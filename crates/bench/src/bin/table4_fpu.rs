//! Table 4: performance density of FPUs for various precisions (FPnew
//! data), plus the extrapolation used by the co-design model.

use bigfloat::Format;
use codesign::{perf_density_extrapolated, table4_rows};

fn main() {
    println!("== Table 4: FPU performance density (FPnew data) ==");
    for row in table4_rows() {
        println!("{row}");
    }
    println!();
    println!("extrapolated densities for intermediate formats:");
    for (e, m) in [(11u32, 36u32), (11, 20), (8, 12), (5, 14), (11, 12)] {
        let f = Format::new(e, m);
        println!(
            "  e{e}m{m} (width {:>2} bits): density {:.2}",
            f.storage_bits(),
            perf_density_extrapolated(f)
        );
    }
}
