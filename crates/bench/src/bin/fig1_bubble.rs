//! Figure 1: rising-bubble interface evolution under different truncation
//! strategies and precisions.
//!
//! Runs the two-phase benchmark at a low Reynolds number to a developed
//! state, then continues at high Re with truncation applied to the
//! advection+diffusion operators: (a) everywhere, (b) cutoff M-1, (c)
//! cutoff M-2, at 4-bit and 12-bit mantissas. Emits interface contours
//! (point clouds) per snapshot plus deviation metrics against the
//! untruncated continuation — the quantitative counterpart of the paper's
//! qualitative insets.

use bigfloat::Format;
use incomp::{interface_deviation, setup_bubble, InsParams};
use raptor_core::{Config, Session, Tracked};

fn main() {
    let full = raptor_bench::full_scale();
    let n = if full { 64 } else { 32 };
    let max_level = 3;
    // Warm up long enough that the flow is developed across coarse AMR
    // levels too (the paper starts truncation from a developed t = 3
    // state); otherwise level-cutoff truncation acts on exact zeros.
    let t_warm = if full { 2.0 } else { 1.0 };
    let t_trunc = if full { 1.0 } else { 0.5 };
    let snaps = 3usize;

    // Phase 1: develop the flow at Re = 35 (paper: run to t = 3 at Re 35).
    let mut warm = setup_bubble(n, max_level, InsParams { re: 35.0, ..Default::default() });
    warm.run::<f64>(t_warm, 100_000, &Session::passthrough());
    eprintln!(
        "warm-up done: t = {:.3}, centroid y = {:.3}",
        warm.t,
        warm.centroid().1
    );

    // Phase 2: continue at Re = 3500 under each strategy.
    let continue_from = |label: &str, cfg: Option<raptor_core::Config>| -> Vec<(Vec<(f64, f64)>, usize, f64)> {
        let mut sim = setup_bubble(n, max_level, InsParams { re: 3500.0, ..Default::default() });
        // Copy the developed state.
        sim.grid = warm.grid.clone();
        sim.t = 0.0;
        sim.update_shadow();
        let sess = cfg.map(|c| Session::new(c).unwrap());
        let mut contours = Vec::new();
        for k in 1..=snaps {
            let target = t_trunc * k as f64 / snaps as f64;
            match &sess {
                Some(s) => sim.run::<Tracked>(target, 100_000, s),
                None => sim.run::<f64>(target, 100_000, &Session::passthrough()),
            }
            contours.push((sim.interface_points(), sim.component_count(), sim.centroid().1));
            eprintln!(
                "  {label} snap {k}: t = {:.3}, components = {}, area = {:.3}, centroid y = {:.3}",
                sim.t,
                sim.component_count(),
                sim.area(),
                sim.centroid().1
            );
        }
        contours
    };

    let reference = continue_from("reference fp64", None);
    println!("== Fig 1: bubble interface under truncation (deviation vs fp64 continuation) ==");
    println!(
        "{:<26} {:>6} {:>14} {:>8} {:>10} {:>10}",
        "strategy", "snap", "mean dev", "points", "components", "centroid_y"
    );
    for (mantissa, label_m) in [(4u32, "4-bit"), (12, "12-bit")] {
        for (cutoff, label_c) in [(0u32, "everywhere"), (1, "cutoff M-1"), (2, "cutoff M-2")] {
            let cfg = Config::op_files(
                Format::new(11, mantissa),
                ["INS/advection", "INS/diffusion"],
            )
            .with_cutoff(max_level, cutoff);
            let label = format!("{label_m} {label_c}");
            let contours = continue_from(&label, Some(cfg));
            for (k, (pts, comps, cy)) in contours.iter().enumerate() {
                let dev = interface_deviation(pts, &reference[k].0);
                println!(
                    "{:<26} {:>6} {:>14.4e} {:>8} {:>10} {:>10.3}",
                    label,
                    k + 1,
                    dev,
                    pts.len(),
                    comps,
                    cy
                );
            }
        }
    }
    // Dump the final reference contour for plotting.
    println!("contour,snap,x,y (reference, final snapshot)");
    for &(x, y) in &reference.last().unwrap().0 {
        println!("contour,{snaps},{x:.5},{y:.5}");
    }
}
