//! Multi-process soak: a `#[test]`-spawned fleet of OS processes
//! (re-execs of this very test binary, the pattern minimpi rank tests
//! use in-thread, taken across a real process boundary) running
//! overlapping campaigns and precision hunts against ONE shared cache
//! directory. The fleet must terminate (no deadlock among per-shard
//! advisory locks), lose no rows to concurrent appends, and leave a
//! cache whose warm replay is identical to a serial run — the
//! "many clients, one warming database" story, proven end to end.
//!
//! Mechanics: the parent test spawns N children as
//! `current_exe() soak_child --exact --test-threads=1` with the shared
//! cache dir in `RAPTOR_SOAK_DIR`. Without that variable, `soak_child`
//! is an instant no-op, so a normal test run never recurses.

use raptor_lab::{
    find, precision_search, precision_search_resumed, run_campaign, run_campaign_resumed,
    CampaignSpec, CandidateSpec, LabParams, OutcomeCache, SearchSpec,
};
use bigfloat::Format;
use std::path::PathBuf;
use std::time::{Duration, Instant};

const ENV_DIR: &str = "RAPTOR_SOAK_DIR";
const FLEET: usize = 3;
const SCENARIOS: [&str; 2] = ["ir/horner", "ir/norm3"];

fn soak_campaign_spec() -> CampaignSpec {
    CampaignSpec {
        params: LabParams::mini(),
        candidates: vec![
            CandidateSpec::op(Format::new(11, 24)),
            CandidateSpec::op(Format::new(11, 16)),
            CandidateSpec::op(Format::new(11, 8)),
            CandidateSpec::op(Format::new(11, 4)),
        ],
        fidelity_floor: 0.999,
        workers: 2,
        machine: codesign::Machine::default(),
    }
}

fn soak_search_spec() -> SearchSpec {
    let mut spec = SearchSpec::new(LabParams::mini(), 0.9999);
    spec.cutoffs = vec![0, 1, 2];
    spec.workers = 2;
    spec
}

/// The overlapping workload every fleet member runs: two campaigns and
/// one precision hunt, all against the shared cache. Every member runs
/// the *same* work on purpose — maximal key contention, duplicate
/// appends, and lock pressure; the replay invariant absorbs it all.
#[test]
fn soak_child() {
    let Ok(dir) = std::env::var(ENV_DIR) else { return };
    let spec = soak_campaign_spec();
    for name in SCENARIOS {
        let scenario = find(name).unwrap();
        let (report, stats) = run_campaign_resumed(scenario.as_ref(), &spec, 2, &dir).unwrap();
        assert_eq!(report.outcomes.len(), 4, "{name}: full lattice");
        assert_eq!(stats.cached + stats.computed, 4, "{name}: every row accounted for");
    }
    let hunt = soak_search_spec();
    let scenario = find(SCENARIOS[0]).unwrap();
    let (rows, stats) = precision_search_resumed(scenario.as_ref(), &hunt, 2, &dir).unwrap();
    assert_eq!(rows.len(), 3, "one row per cutoff");
    assert!(stats.cached + stats.computed > 0, "hunt probed or replayed");
}

#[test]
fn fleet_of_processes_shares_one_cache_without_losing_rows_or_deadlocking() {
    if std::env::var(ENV_DIR).is_ok() {
        return; // never recurse inside a fleet member
    }
    let dir: PathBuf = {
        let mut p = std::env::temp_dir();
        p.push(format!("raptor-soak-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    };
    let exe = std::env::current_exe().unwrap();

    let mut fleet: Vec<std::process::Child> = (0..FLEET)
        .map(|_| {
            std::process::Command::new(&exe)
                .arg("soak_child")
                .arg("--exact")
                .arg("--test-threads=1")
                .env(ENV_DIR, &dir)
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn fleet member")
        })
        .collect();

    // Watchdog: a lock-order deadlock would hang the fleet forever; a
    // bounded poll converts that into a loud kill + failure instead.
    let deadline = Instant::now() + Duration::from_secs(240);
    let mut exits = vec![None; fleet.len()];
    while exits.iter().any(Option::is_none) {
        for (i, child) in fleet.iter_mut().enumerate() {
            if exits[i].is_none() {
                exits[i] = child.try_wait().expect("wait on fleet member");
            }
        }
        if Instant::now() > deadline {
            for child in &mut fleet {
                let _ = child.kill();
            }
            panic!("fleet deadlocked: exits so far {exits:?}");
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    for (i, status) in exits.iter().enumerate() {
        assert!(status.unwrap().success(), "fleet member {i} failed: {status:?}");
    }

    // No lost rows: the merged cache holds the full lattice for both
    // scenarios and at least the serial hunt's probe set, with no torn
    // lines left behind.
    let cache = OutcomeCache::load(&dir).unwrap();
    assert_eq!(cache.len(), 2 * 4, "4 candidates x 2 scenarios, no row lost");
    assert_eq!(cache.recovered(), 0, "no torn lines from a healthy fleet");
    let params = LabParams::mini();
    for name in SCENARIOS {
        assert_eq!(cache.baseline(name, &params), Some(1.0), "{name} baseline cached");
    }

    // Merged result identical to a serial run: a warm replay of the
    // campaign and the hunt computes nothing and reproduces the
    // cache-less reports byte for byte.
    let spec = soak_campaign_spec();
    for name in SCENARIOS {
        let scenario = find(name).unwrap();
        let serial = run_campaign(scenario.as_ref(), &spec);
        let (warm, stats) = run_campaign_resumed(scenario.as_ref(), &spec, 1, &dir).unwrap();
        assert_eq!((stats.cached, stats.computed), (4, 0), "{name}: fully warm");
        assert_eq!(warm.to_json().render(), serial.to_json().render(), "{name}: identical");
        assert_eq!(warm, serial, "{name}: identical (structural)");
    }
    let hunt = soak_search_spec();
    let scenario = find(SCENARIOS[0]).unwrap();
    let serial_rows = precision_search(scenario.as_ref(), &hunt);
    let (warm_rows, hs) = precision_search_resumed(scenario.as_ref(), &hunt, 2, &dir).unwrap();
    assert_eq!(hs.computed, 0, "warm re-hunt performs zero scenario runs");
    assert!(hs.cached > 0);
    assert_eq!(warm_rows, serial_rows, "hunt rows identical to serial");
    let _ = std::fs::remove_dir_all(&dir);
}
