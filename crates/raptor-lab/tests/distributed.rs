//! Distributed-campaign acceptance tests: merged multi-rank reports
//! content-identical to the single-rank sweep, lossless outcome JSON
//! round-trips, warm resume with zero candidate re-runs, remainder
//! sharding on the Kelvin–Helmholtz lattice, and label injectivity
//! (the resume/merge key).

use bigfloat::Format;
use raptor_core::Json;
use raptor_lab::{
    default_candidates, find, native_candidates, precision_search, precision_search_distributed,
    precision_search_distributed_stats, precision_search_resumable, precision_search_resumed,
    run_campaign, run_campaign_distributed, run_campaign_distributed_resumable,
    run_campaign_resumed, shear_candidates, CampaignReport, CampaignSpec, CandidateOutcome,
    CandidateSpec, LabParams, OutcomeCache, SearchSpec,
};
use std::path::PathBuf;

fn mini_spec(candidates: Vec<CandidateSpec>) -> CampaignSpec {
    CampaignSpec {
        params: LabParams::mini(),
        candidates,
        fidelity_floor: 0.999,
        workers: 4,
        machine: codesign::Machine::default(),
    }
}

fn tmp_cache(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("raptor-dist-test-{}-{name}-cache", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// The acceptance criterion: same candidate labels, fidelities, predicted
/// speedups, and ranking. Comparing the rendered JSON compares all of it
/// at once (labels, every f64 bit-exactly, and row order).
fn assert_reports_identical(a: &CampaignReport, b: &CampaignReport, what: &str) {
    assert_eq!(a.to_json().render(), b.to_json().render(), "{what}");
    assert_eq!(a, b, "{what} (structural)");
}

#[test]
fn distributed_matches_single_rank_across_three_scenarios() {
    // >= 3 scenarios x ranks in {1, 2, 3}: the merged report must be
    // content-identical to the plain sweep. The 3-candidate lattice does
    // not divide evenly by 2 ranks, so remainders are exercised here too.
    let lattice = || {
        vec![
            CandidateSpec::op(Format::new(11, 24)),
            CandidateSpec::op(Format::new(11, 12)),
            CandidateSpec::op(Format::new(11, 6)),
        ]
    };
    for name in ["ir/horner", "ir/norm3", "eos/cellular"] {
        let scenario = find(name).unwrap();
        let spec = mini_spec(lattice());
        let single = run_campaign(scenario.as_ref(), &spec);
        for ranks in [1usize, 2, 3] {
            let merged = run_campaign_distributed(scenario.as_ref(), &spec, ranks);
            assert_reports_identical(&merged, &single, &format!("{name} at {ranks} ranks"));
        }
    }
}

#[test]
fn kelvin_helmholtz_prime_lattice_shards_with_remainders() {
    // The KH scenario's natural lattice has 7 candidates — prime, so no
    // rank count in 2..=6 divides it and the work distribution is always
    // uneven. 7 = 5 static + 2 M-1 rows (KH refines: max_level 2
    // at mini scale, so the cutoff rows survive dedup).
    let scenario = find("hydro/kelvin-helmholtz").unwrap();
    assert_eq!(shear_candidates().len(), 7);
    let spec = mini_spec(shear_candidates());
    let single = run_campaign(scenario.as_ref(), &spec);
    assert_eq!(single.outcomes.len(), 7, "refinement hierarchy keeps all 7");
    assert_eq!(single.baseline_fidelity, 1.0);
    for ranks in [2usize, 3] {
        let merged = run_campaign_distributed(scenario.as_ref(), &spec, ranks);
        assert_reports_identical(&merged, &single, &format!("KH at {ranks} ranks"));
    }
}

#[test]
fn outcome_json_round_trips_losslessly() {
    // to_json -> render -> parse -> from_json == original, for op-mode,
    // mem-mode (deviation flags in the report), and error rows alike.
    let scenario = find("eos/cellular").unwrap();
    let spec = mini_spec(vec![
        CandidateSpec::op(Format::new(11, 24)),
        CandidateSpec::op(Format::new(11, 10)).mem(1e-3),
        // Program-scope mem-mode is invalid: produces an error row.
        CandidateSpec::op(Format::new(11, 10)).mem(1e-3).program_scope(),
    ]);
    let report = run_campaign(scenario.as_ref(), &spec);
    assert!(report.outcomes.iter().any(|o| o.error.is_some()), "error row present");
    assert!(
        report.outcomes.iter().any(|o| !o.report.flags.is_empty()),
        "mem-mode flags present"
    );
    for o in &report.outcomes {
        let text = o.to_json().render();
        let back = CandidateOutcome::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(&back, o, "outcome row round-trips: {}", o.spec.label());
    }
    let text = report.to_json().render();
    let back = CampaignReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, report, "whole campaign report round-trips");
}

#[test]
fn resume_serves_cached_rows_and_reruns_only_missing_ones() {
    let scenario = find("ir/horner").unwrap();
    let spec = mini_spec(vec![
        CandidateSpec::op(Format::new(11, 30)),
        CandidateSpec::op(Format::new(11, 16)),
        CandidateSpec::op(Format::new(11, 8)),
        CandidateSpec::op(Format::new(11, 4)),
    ]);
    let path = tmp_cache("resume");

    // Cold run: everything computes.
    let (cold, s1) = run_campaign_resumed(scenario.as_ref(), &spec, 2, &path).unwrap();
    assert_eq!((s1.cached, s1.computed), (0, 4));

    // Warm resume of a completed campaign: ZERO candidate re-runs, same
    // report (served entirely from the cache, baseline included).
    let (warm, s2) = run_campaign_resumed(scenario.as_ref(), &spec, 2, &path).unwrap();
    assert_eq!((s2.cached, s2.computed), (4, 0));
    assert_reports_identical(&warm, &cold, "warm resume");

    // Evict half: only the evicted half recomputes, and the merged
    // report is still identical to the cold run.
    let mut cache = OutcomeCache::load(&path).unwrap();
    assert_eq!(cache.len(), 4);
    cache.evict_half();
    assert_eq!(cache.len(), 2);
    cache.save().unwrap();
    let (half, s3) = run_campaign_resumed(scenario.as_ref(), &spec, 3, &path).unwrap();
    assert_eq!((s3.cached, s3.computed), (2, 2));
    assert_reports_identical(&half, &cold, "half-warm resume");

    // A resumed sweep under a *stricter* floor re-gates cached rows
    // instead of replaying stale verdicts.
    let mut strict = spec.clone();
    strict.fidelity_floor = 1.0;
    let (regated, s4) = run_campaign_resumed(scenario.as_ref(), &strict, 1, &path).unwrap();
    assert_eq!(s4.computed, 0, "re-gating needs no re-runs");
    assert!(
        regated.outcomes.iter().all(|o| !o.accepted || o.fidelity >= 1.0),
        "cached rows re-gated against the live floor"
    );
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn resumable_without_cache_matches_plain_distributed() {
    let scenario = find("ir/norm3").unwrap();
    let spec = mini_spec(vec![
        CandidateSpec::op(Format::new(11, 20)),
        CandidateSpec::op(Format::new(11, 7)),
    ]);
    let (report, stats) =
        run_campaign_distributed_resumable(scenario.as_ref(), &spec, 2, None);
    assert_eq!((stats.cached, stats.computed), (0, 2));
    assert_reports_identical(
        &report,
        &run_campaign(scenario.as_ref(), &spec),
        "cacheless resumable",
    );
}

#[test]
fn distributed_precision_search_matches_single_rank() {
    let scenario = find("ir/horner").unwrap();
    let mut spec = SearchSpec::new(LabParams::mini(), 0.9999);
    spec.cutoffs = vec![0, 1, 2];
    let single = precision_search(scenario.as_ref(), &spec);
    for ranks in [1usize, 2, 3] {
        let dist = precision_search_distributed(scenario.as_ref(), &spec, ranks);
        assert_eq!(dist, single, "search rows identical at {ranks} ranks");
    }
}

#[test]
fn warm_hunt_replays_probes_with_zero_runs() {
    // The acceptance criterion of the probe cache: a warm resume of a
    // completed precision search performs ZERO scenario runs — every
    // probe is served from the cache, the chains drain before the pool
    // starts, and even the baseline reference run is skipped.
    let scenario = find("ir/horner").unwrap();
    let mut spec = SearchSpec::new(LabParams::mini(), 0.9999);
    spec.cutoffs = vec![0, 1, 2];
    let path = tmp_cache("hunt");

    let (cold, s1) = precision_search_resumed(scenario.as_ref(), &spec, 2, &path).unwrap();
    assert_eq!(s1.cached, 0);
    assert!(s1.computed > 0, "cold hunt computes probes");

    let (warm, s2) = precision_search_resumed(scenario.as_ref(), &spec, 3, &path).unwrap();
    assert_eq!(s2.computed, 0, "warm re-hunt performs zero scenario runs");
    assert_eq!(s2.cached, s1.computed, "every probe served from the cache");
    assert!(s2.pairs_by_rank.iter().all(|&n| n == 0), "{:?}", s2.pairs_by_rank);
    assert_eq!(warm, cold, "warm rows identical to the cold hunt");

    // The serial resumable driver replays the same cache to the same
    // rows — the ProbeChain contract holds across both drivers.
    let mut cache = OutcomeCache::load(&path).unwrap();
    let (serial, st) = precision_search_resumable(scenario.as_ref(), &spec, Some(&mut cache));
    assert_eq!((st.cached, st.computed), (s1.computed, 0));
    assert_eq!(serial, cold, "serial warm replay matches");

    // And the plain (uncached) search still agrees.
    assert_eq!(precision_search(scenario.as_ref(), &spec), cold);
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn probe_stealing_balances_skewed_chains_and_matches_serial() {
    // hydro/sedov at mini scale produces deliberately skewed probe
    // chains: M-0 bisects the full mantissa ladder (8 probes) while M-1
    // and M-2 spare the refined levels and finish after their 2 bracket
    // probes. The retired block partition pinned one whole chain per
    // rank — [8, 2, 2] at 3 ranks, a spread of 6 — because a chain's
    // probes are sequential and could never leave their rank. Stealing
    // at probe granularity keeps the merged rows identical to the serial
    // search while the sequential tail rotates through parked stealers.
    let scenario = find("hydro/sedov").unwrap();
    let mut spec = SearchSpec::new(LabParams::mini(), 0.999);
    spec.cutoffs = vec![0, 1, 2];
    let single = precision_search(scenario.as_ref(), &spec);
    let lengths: Vec<usize> = single.iter().map(|r| r.probes.len()).collect();
    let total: usize = lengths.iter().sum();
    assert!(
        lengths.iter().max().unwrap() - lengths.iter().min().unwrap() >= 4,
        "chains are skewed enough to matter: {lengths:?}"
    );
    for ranks in [2usize, 3] {
        spec.workers = ranks; // one stealer per rank
        let (rows, stats) =
            precision_search_distributed_stats(scenario.as_ref(), &spec, ranks);
        assert_eq!(rows, single, "rows row-for-row identical at {ranks} ranks");
        assert_eq!(stats.stealers, ranks);
        assert_eq!((stats.cached, stats.computed), (0, total));
        assert_eq!(stats.pairs_by_rank.len(), ranks);
        assert_eq!(stats.pairs_by_rank.iter().sum::<usize>(), total);
        assert!(
            stats.pairs_by_rank.iter().all(|&n| n >= 1),
            "fair start feeds every rank at {ranks} ranks: {:?}",
            stats.pairs_by_rank
        );
        if ranks == 3 {
            // The bound the block partition deterministically fails:
            // chain-per-rank pinning yields a spread of 6 ([8, 2, 2]);
            // probe stealing must stay well under it.
            let (min, max) = (
                *stats.pairs_by_rank.iter().min().unwrap(),
                *stats.pairs_by_rank.iter().max().unwrap(),
            );
            assert!(
                max - min <= 4,
                "probe stealing beats chain pinning: {:?}",
                stats.pairs_by_rank
            );
        }
    }
}

#[test]
fn distributed_search_handles_empty_and_single_chain_lattices() {
    let scenario = find("ir/horner").unwrap();
    let mut spec = SearchSpec::new(LabParams::mini(), 0.9999);

    // Empty lattice: the pool dismisses every stealer at the fair start
    // without a deadlock; no baseline ever runs.
    spec.cutoffs = Vec::new();
    let (rows, stats) = precision_search_distributed_stats(scenario.as_ref(), &spec, 2);
    assert!(rows.is_empty());
    assert_eq!((stats.cached, stats.computed), (0, 0));
    assert_eq!(stats.pairs_by_rank, vec![0, 0]);

    // Single chain on more stealers than ever-ready probes: the chain's
    // sequential probes drain one at a time and the result still matches
    // the serial row.
    spec.cutoffs = vec![1];
    let single = precision_search(scenario.as_ref(), &spec);
    let (rows, stats) = precision_search_distributed_stats(scenario.as_ref(), &spec, 3);
    assert_eq!(rows, single);
    assert_eq!(stats.pairs_by_rank.iter().sum::<usize>(), single[0].probes.len());
}

#[test]
fn native_lattice_answers_the_gpu_question() {
    // fp64/fp32 on the hardware path only: fp64 rows are exact (identity
    // truncation), and every row runs without error on the native path.
    let scenario = find("ir/horner").unwrap();
    let spec = mini_spec(native_candidates());
    let report = run_campaign_distributed(scenario.as_ref(), &spec, 2);
    // ir has no refinement hierarchy: the M-1 twins dedup away, leaving
    // the two static native rows.
    assert_eq!(report.outcomes.len(), 2);
    for o in &report.outcomes {
        assert!(o.error.is_none(), "{}: {:?}", o.spec.label(), o.error);
        assert!(o.spec.native);
        assert!(o.spec.format.is_native());
        assert!(o.spec.label().contains("native"));
    }
    let fp64 = report.outcomes.iter().find(|o| o.spec.format == Format::FP64).unwrap();
    assert_eq!(fp64.fidelity, 1.0, "fp64 native is the identity");
    // A native-path spec on a non-native format is rejected as an error
    // row, not silently soft-floated.
    let bad = mini_spec(vec![CandidateSpec::op(Format::FP16).native_path()]);
    let r = run_campaign(scenario.as_ref(), &bad);
    assert!(r.outcomes[0].error.is_some());
}

#[test]
fn candidate_labels_are_injective_across_all_shipped_lattices() {
    // The label is the resume/merge key: every distinct spec must render
    // a distinct label. Sweep the shipped lattices plus targeted
    // near-collisions on every axis.
    let mut specs: Vec<CandidateSpec> = Vec::new();
    specs.extend(default_candidates());
    specs.extend(native_candidates());
    specs.extend(shear_candidates());
    // mem thresholds differing only in the threshold.
    specs.push(CandidateSpec::op(Format::new(11, 10)).mem(1e-3));
    specs.push(CandidateSpec::op(Format::new(11, 10)).mem(1e-6));
    specs.push(CandidateSpec::op(Format::new(11, 10)).mem(2.5e-4));
    // op vs mem at the same format.
    specs.push(CandidateSpec::op(Format::new(11, 10)));
    // native vs soft at the same format/cutoff.
    specs.push(CandidateSpec::op(Format::FP32));
    // scope axis.
    specs.push(CandidateSpec::op(Format::new(11, 10)).program_scope());
    // cutoff axis (M-0 is distinct from static).
    specs.push(CandidateSpec::op(Format::new(11, 10)).with_cutoff(0));
    specs.push(CandidateSpec::op(Format::new(11, 10)).with_cutoff(1));
    specs.push(CandidateSpec::op(Format::new(11, 10)).with_cutoff(12));
    // e/m boundary confusion: e11m1 vs e1... (Format forbids e<2, but
    // e2m11 vs e21m1 would collide if tokens concatenated digits).
    specs.push(CandidateSpec::op(Format::new(2, 11)));
    specs.push(CandidateSpec::op(Format::new(11, 2)));

    // Drop exact duplicates the shipped lattices share (e.g. FP32 static
    // appears in both default and shear lattices) — those SHOULD share a
    // label; what must never happen is distinct specs sharing one.
    let mut seen: Vec<(CandidateSpec, String)> = Vec::new();
    for s in specs {
        let label = s.label();
        if let Some((other, _)) = seen.iter().find(|(_, l)| *l == label) {
            assert_eq!(
                other, &s,
                "distinct specs collide on label `{label}`: {other:?} vs {s:?}"
            );
        } else {
            seen.push((s, label));
        }
    }
    assert!(seen.len() >= 25, "lattice coverage: {} distinct labels", seen.len());

    // And the label survives the spec's own JSON round-trip.
    for (s, label) in &seen {
        let back = CandidateSpec::from_json(&Json::parse(&s.to_json().render()).unwrap()).unwrap();
        assert_eq!(&back, s);
        assert_eq!(&back.label(), label);
    }
}
