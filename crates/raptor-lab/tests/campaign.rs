//! Deterministic mini-campaign tests: coarse grids, few steps, fixed
//! candidate lattices — the ISSUE-mandated coverage for the campaign
//! engine (baseline exactness, monotone format-ladder degradation, JSON
//! round-trip), plus pool-parallelism and precision-search checks.

use bigfloat::Format;
use raptor_core::Json;
use raptor_lab::{
    find, precision_search, run_campaign, run_campaigns, search_to_json, campaigns_to_json,
    CampaignSpec, CandidateSpec, LabParams, SearchSpec,
};

fn mini_spec(candidates: Vec<CandidateSpec>) -> CampaignSpec {
    CampaignSpec {
        params: LabParams::mini(),
        candidates,
        fidelity_floor: 0.999,
        workers: 4,
        machine: codesign::Machine::default(),
    }
}

#[test]
fn baseline_fidelity_is_exactly_one() {
    // Every registered scenario's baseline must score 1.0 against itself:
    // the Tracked run under a passthrough session is bit-identical to the
    // f64 reference, and the fidelity map is exact at zero error. Use the
    // cheap scenarios for the full sweep; the campaign test below covers
    // a hydro baseline.
    let p = LabParams::mini();
    for name in ["ir/horner", "ir/norm3", "eos/cellular"] {
        let sc = find(name).unwrap();
        let base = sc.build(&p).run(&raptor_core::Session::passthrough());
        assert_eq!(
            sc.fidelity(&base, &base),
            1.0,
            "{name} baseline must be exact"
        );
    }
}

#[test]
fn sod_campaign_monotone_ladder_and_json_round_trip() {
    // (a) baseline fidelity == 1.0, (b) fidelity degrades monotonically
    // down the mantissa ladder, (c) the JSON summary parses back.
    let scenario = find("hydro/sod").unwrap();
    let ladder = [30u32, 12, 4];
    let spec = mini_spec(
        ladder
            .iter()
            .map(|&m| CandidateSpec::op(Format::new(11, m)))
            .collect(),
    );
    let report = run_campaign(scenario.as_ref(), &spec);
    assert_eq!(report.baseline_fidelity, 1.0);
    assert_eq!(report.outcomes.len(), 3);

    // Recover per-mantissa fidelities (ranking may reorder).
    let fid = |m: u32| {
        report
            .outcomes
            .iter()
            .find(|o| o.spec.format.man_bits() == m)
            .unwrap()
            .fidelity
    };
    let (f30, f12, f4) = (fid(30), fid(12), fid(4));
    assert!(
        f30 > f12 && f12 > f4,
        "monotone down the ladder: {f30} > {f12} > {f4}"
    );
    assert!(f30 < 1.0, "even 30 bits deviates: {f30}");
    assert!(f30 > 0.999, "30 bits is close: {f30}");

    // Counters flowed: truncated work happened in every candidate.
    for o in &report.outcomes {
        assert!(o.error.is_none());
        assert!(o.counters.trunc.total() > 0, "{}", o.spec.label());
        assert!(o.predicted_speedup >= 1.0);
    }

    // JSON round-trip through the shared serializer.
    let text = report.to_json().render();
    let back = Json::parse(&text).expect("campaign JSON parses back");
    assert_eq!(back.get("scenario").unwrap().as_str(), Some("hydro/sod"));
    assert_eq!(back.get("baseline_fidelity").unwrap().as_f64(), Some(1.0));
    let cands = back.get("candidates").unwrap().as_arr().unwrap();
    assert_eq!(cands.len(), 3);
    for c in cands {
        assert!(c.get("fidelity").unwrap().as_f64().is_some());
        assert!(c.get("accepted").unwrap().as_bool().is_some());
        // The embedded per-candidate report carries full counters.
        let counters = c.get("report").unwrap().get("counters").unwrap();
        assert!(counters.get("trunc").unwrap().get("total").unwrap().as_f64().unwrap() > 0.0);
    }
}

#[test]
fn default_sweep_runs_twelve_configs_in_parallel_and_ranks() {
    // The acceptance-criteria shape: one campaign call, >= 12 configs on
    // the worker pool, ranked by (fidelity gate, predicted speedup).
    let scenario = find("hydro/sedov").unwrap();
    let mut spec = CampaignSpec::sweep(LabParams::mini());
    spec.fidelity_floor = 0.999;
    spec.workers = 8;
    assert!(spec.candidates.len() >= 12);
    let report = run_campaign(scenario.as_ref(), &spec);
    assert_eq!(report.outcomes.len(), spec.candidates.len());
    assert_eq!(report.baseline_fidelity, 1.0);

    // Ranking invariants: accepted block first, sorted by predicted
    // speedup; then rejected, sorted by fidelity.
    let first_rejected = report
        .outcomes
        .iter()
        .position(|o| !o.accepted)
        .unwrap_or(report.outcomes.len());
    for o in &report.outcomes[..first_rejected] {
        assert!(o.accepted);
    }
    for o in &report.outcomes[first_rejected..] {
        assert!(!o.accepted, "accepted candidate ranked below a rejected one");
    }
    for w in report.outcomes[..first_rejected].windows(2) {
        assert!(
            w[0].predicted_speedup >= w[1].predicted_speedup,
            "accepted block ordered by speedup"
        );
    }
    for w in report.outcomes[first_rejected..].windows(2) {
        assert!(w[0].fidelity >= w[1].fidelity, "rejected block ordered by fidelity");
    }

    // The wide static FP32 config must clear the floor on a mini Sedov;
    // static fp8 must not (0.98 fidelity: the blast front degrades).
    let by_label = |label: &str| report.outcomes.iter().find(|o| o.spec.label() == label);
    assert!(by_label("e8m23 op regions").unwrap().accepted);
    assert!(!by_label("e5m2 op regions").unwrap().accepted);

    // The human table renders every row.
    let table = report.render_table();
    assert_eq!(table.lines().count(), 2 + report.outcomes.len());
    assert!(table.contains("OK") && table.contains("too coarse"));
}

#[test]
fn cutoff_candidates_truncate_less_and_score_at_least_as_well() {
    // M-1 spares the finest level: lower truncated fraction, fidelity no
    // worse (the Fig. 7a shape), and a smaller predicted speedup.
    let scenario = find("hydro/sedov").unwrap();
    let fmt = Format::new(11, 8);
    let spec = mini_spec(vec![
        CandidateSpec::op(fmt),
        CandidateSpec::op(fmt).with_cutoff(1),
    ]);
    let report = run_campaign(scenario.as_ref(), &spec);
    let m0 = report.outcomes.iter().find(|o| o.spec.cutoff.is_none()).unwrap();
    let m1 = report.outcomes.iter().find(|o| o.spec.cutoff == Some(1)).unwrap();
    assert!(
        m1.counters.truncated_fraction() < m0.counters.truncated_fraction(),
        "M-1 truncates less: {} vs {}",
        m1.counters.truncated_fraction(),
        m0.counters.truncated_fraction()
    );
    assert!(
        m1.fidelity >= m0.fidelity * 0.999,
        "sparing the finest level does not hurt: {} vs {}",
        m1.fidelity,
        m0.fidelity
    );
    assert!(m1.predicted_speedup <= m0.predicted_speedup * 1.001);
}

#[test]
fn multi_scenario_campaign_bundles_to_json() {
    let scenarios: Vec<_> = ["ir/horner", "eos/cellular"]
        .iter()
        .map(|n| find(n).unwrap())
        .collect();
    let spec = mini_spec(vec![
        CandidateSpec::op(Format::new(11, 24)),
        CandidateSpec::op(Format::new(11, 8)),
    ]);
    let reports = run_campaigns(&scenarios, &spec);
    assert_eq!(reports.len(), 2);
    let doc = campaigns_to_json(&reports);
    let back = Json::parse(&doc.render()).unwrap();
    let arr = back.get("campaigns").unwrap().as_arr().unwrap();
    assert_eq!(arr.len(), 2);
    assert_eq!(arr[0].get("crate").unwrap().as_str(), Some("raptor-ir"));
    assert_eq!(arr[1].get("crate").unwrap().as_str(), Some("eos"));
}

#[test]
fn eos_campaign_reproduces_hypothesis_two() {
    // Truncating the table EOS: wide mantissas converge, 20 bits breaks
    // the Newton inversion and craters fidelity (§6.1's falsification).
    let scenario = find("eos/cellular").unwrap();
    let spec = mini_spec(vec![
        CandidateSpec::op(Format::new(11, 48)),
        CandidateSpec::op(Format::new(11, 20)),
    ]);
    let report = run_campaign(scenario.as_ref(), &spec);
    let f48 = report.outcomes.iter().find(|o| o.spec.format.man_bits() == 48).unwrap();
    let f20 = report.outcomes.iter().find(|o| o.spec.format.man_bits() == 20).unwrap();
    assert!(f48.fidelity > 0.999, "48-bit EOS is fine: {}", f48.fidelity);
    assert!(
        f20.fidelity < f48.fidelity,
        "20-bit EOS visibly worse: {} vs {}",
        f20.fidelity,
        f48.fidelity
    );
}

#[test]
fn precision_search_finds_minimal_safe_mantissa() {
    // Greedy refinement on the IR kernel: cheap, deterministic, and the
    // bisection invariants are easy to assert.
    let scenario = find("ir/horner").unwrap();
    let mut spec = SearchSpec::new(LabParams::mini(), 0.9999);
    spec.cutoffs = vec![0, 1];
    let rows = precision_search(scenario.as_ref(), &spec);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        let m = row.minimal_m.expect("52 bits is plenty for Horner");
        assert!(
            (2..=52).contains(&m),
            "minimal mantissa in range: {m} (cutoff {})",
            row.cutoff
        );
        assert!(row.fidelity >= spec.fidelity_floor);
        // Bisection, not enumeration: probes are logarithmic in the range.
        assert!(row.probes.len() <= 9, "{} probes", row.probes.len());
        // Minimality: every failing probe is narrower than the answer.
        for &(pm, pf) in &row.probes {
            if pf < spec.fidelity_floor {
                assert!(pm < m, "probe {pm} failed but answer is {m}");
            }
        }
    }
    // JSON emitter round-trips.
    let doc = search_to_json(scenario.name(), &rows);
    let back = Json::parse(&doc.render()).unwrap();
    assert_eq!(back.get("rows").unwrap().as_arr().unwrap().len(), 2);
}

#[test]
fn mem_mode_candidate_runs_through_the_campaign() {
    // The mode axis: a mem-mode candidate on the hydro scenario produces
    // a report with deviation flags, through the same campaign path.
    let scenario = find("hydro/sod").unwrap();
    let spec = mini_spec(vec![CandidateSpec::op(Format::new(11, 10)).mem(1e-3)]);
    let report = run_campaign(scenario.as_ref(), &spec);
    let o = &report.outcomes[0];
    assert!(o.error.is_none(), "mem-mode candidate ran: {:?}", o.error);
    assert!(o.fidelity > 0.0 && o.fidelity < 1.0);
    assert!(!o.report.flags.is_empty(), "mem-mode flags collected");
    // Program-scope mem-mode is rejected per Fig. 2b and reported as an
    // error row instead of panicking the campaign.
    let bad = mini_spec(vec![CandidateSpec::op(Format::new(11, 10)).mem(1e-3).program_scope()]);
    let report = run_campaign(scenario.as_ref(), &bad);
    assert!(report.outcomes[0].error.is_some());
    assert!(!report.outcomes[0].accepted);
}
