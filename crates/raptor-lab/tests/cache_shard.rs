//! Sharded-cache invariants under fire: crash consistency (torn last
//! lines from killed writers), randomized interleavings of
//! insert/save/load/evict against an in-memory model (seeded SplitMix64,
//! same style as `raptor-core/tests/fastpath.rs`), probe-key
//! injectivity, and the PR-5 multi-process clobber regression under the
//! per-shard locking.

use bigfloat::Format;
use raptor_core::{Counters, Report};
use raptor_lab::{CandidateOutcome, CandidateSpec, LabParams, OutcomeCache};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// SplitMix64: deterministic, well-distributed 64-bit stream.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn outcome(m: u32) -> CandidateOutcome {
    CandidateOutcome {
        spec: CandidateSpec::op(Format::new(11, m)),
        fidelity: 0.5 + m as f64 * 1e-3,
        accepted: true,
        predicted_speedup: 1.5,
        speedup_compute: 2.0,
        speedup_memory: 1.25,
        counters: Counters::default(),
        report: Report {
            config: format!("m={m}"),
            counters: Counters::default(),
            flags: Vec::new(),
            warnings: Vec::new(),
        },
        error: None,
    }
}

fn tmp_cache(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("raptor-shard-test-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// Every `shard*.jsonl` file under the cache dir, recursively.
fn shard_files(cache: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    for entry in std::fs::read_dir(cache).unwrap().flatten() {
        let p = entry.path();
        if p.is_dir() {
            for f in std::fs::read_dir(&p).unwrap().flatten() {
                let name = f.file_name().to_string_lossy().into_owned();
                if name.starts_with("shard") && name.ends_with(".jsonl") {
                    files.push(f.path());
                }
            }
        }
    }
    files.sort();
    files
}

#[test]
fn torn_last_lines_are_absorbed_counted_and_repaired_by_the_next_append() {
    let path = tmp_cache("torn");
    let params = LabParams::mini();
    let mut cache = OutcomeCache::load(&path).unwrap();
    for m in [4u32, 8, 12, 16, 20, 24] {
        cache.insert("s", &params, &outcome(m));
    }
    cache.set_baseline("s", &params, 1.0);
    cache.save().unwrap();

    // Simulate a writer killed mid-append in EVERY populated shard: a
    // strict prefix of a JSON object, no trailing newline.
    use std::io::Write;
    let files = shard_files(&path);
    assert!(!files.is_empty());
    for f in &files {
        let mut fh = std::fs::OpenOptions::new().append(true).open(f).unwrap();
        fh.write_all(b"{\"k\":\"s|scale0|threads1|e11m99 op\",\"t\":\"outco").unwrap();
    }

    // Load absorbs every torn tail — nothing lost, one recovered count
    // per fragment, no error.
    let back = OutcomeCache::load(&path).unwrap();
    assert_eq!(back.recovered(), files.len(), "one absorbed line per torn shard");
    assert_eq!(back.len(), 6, "no completed row lost to the torn tails");
    assert_eq!(back.baseline("s", &params), Some(1.0));

    // A subsequent append repairs its shard: the fragment is quarantined
    // onto its own line, so every shard file ends in a newline again and
    // the freshly appended rows replay.
    let mut writer = OutcomeCache::load(&path).unwrap();
    for m in 2u32..=30 {
        writer.insert("s", &params, &outcome(m));
    }
    writer.save().unwrap();
    for f in shard_files(&path) {
        let bytes = std::fs::read(&f).unwrap();
        assert_eq!(*bytes.last().unwrap(), b'\n', "{} repaired by append", f.display());
    }
    let repaired = OutcomeCache::load(&path).unwrap();
    assert_eq!(repaired.len(), 29, "old and new rows all replay");
    assert_eq!(repaired.recovered(), files.len(), "fragments still absorbed, not lost");

    // Compaction drops the debris for good.
    let mut compacted = OutcomeCache::load(&path).unwrap();
    compacted.compact().unwrap();
    let clean = OutcomeCache::load(&path).unwrap();
    assert_eq!(clean.recovered(), 0, "compaction scrubbed the torn fragments");
    assert_eq!(clean.len(), 29);
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn random_interleavings_of_insert_save_load_evict_round_trip_exactly() {
    // Drive the cache with a seeded random op stream and mirror every op
    // in a plain in-memory model; after every save+reload the cache must
    // agree with the model exactly. Eviction keeps the first, third, ...
    // key in sorted order — mirrored literally in the model.
    let path = tmp_cache("prop");
    let scenarios = ["a", "b/c", "d"];
    let params = LabParams::mini();
    let mut rng = Rng(0x5EED_CAFE);
    let mut model: BTreeMap<(usize, u32), CandidateOutcome> = BTreeMap::new();
    let model_key =
        |si: usize, m: u32| format!("{}|scale0|threads1|{}", scenarios[si], outcome(m).spec.label());

    let mut cache = OutcomeCache::load(&path).unwrap();
    for _ in 0..200 {
        match rng.below(10) {
            // insert: 6/10
            0..=5 => {
                let si = rng.below(scenarios.len() as u64) as usize;
                let m = 2 + rng.below(51) as u32;
                cache.insert(scenarios[si], &params, &outcome(m));
                model.insert((si, m), outcome(m));
            }
            // save: 2/10
            6 | 7 => cache.save().unwrap(),
            // save + reload: 1/10
            8 => {
                cache.save().unwrap();
                cache = OutcomeCache::load(&path).unwrap();
            }
            // evict_half (then save, so the reload path sees it): 1/10
            _ => {
                cache.evict_half();
                let keys: Vec<String> =
                    model.keys().map(|&(si, m)| model_key(si, m)).collect();
                let mut sorted = keys;
                sorted.sort();
                let drop: Vec<String> =
                    sorted.iter().skip(1).step_by(2).cloned().collect();
                model.retain(|&(si, m), _| !drop.contains(&model_key(si, m)));
                cache.save().unwrap();
            }
        }
    }
    cache.save().unwrap();

    let back = OutcomeCache::load(&path).unwrap();
    assert_eq!(back.recovered(), 0);
    assert_eq!(back.len(), model.len(), "row count matches the model");
    for (&(si, m), expected) in &model {
        let spec = CandidateSpec::op(Format::new(11, m));
        assert_eq!(
            back.get(scenarios[si], &params, &spec),
            Some(expected),
            "model row {si}/{m} round-trips"
        );
    }
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn probe_keys_stay_injective_across_randomized_draws() {
    // Encode each probe's identity into its stored values; if two
    // distinct (scenario, cutoff, m) points ever shared a cache slot,
    // at least one readback would return the other's encoding.
    let path = tmp_cache("probes");
    let scenarios = ["a", "b/c"];
    let params = LabParams::mini();
    let mut rng = Rng(0xD15C_0B15);
    let mut drawn: BTreeMap<(usize, u32, u32), f64> = BTreeMap::new();
    let mut cache = OutcomeCache::load(&path).unwrap();
    for _ in 0..300 {
        let si = rng.below(scenarios.len() as u64) as usize;
        let cutoff = rng.below(4) as u32;
        let m = 2 + rng.below(51) as u32;
        // The identity encoding: distinct points, distinct fidelity.
        let ident = si as f64 * 1e6 + cutoff as f64 * 1e3 + m as f64;
        cache.insert_probe(scenarios[si], &params, 11, cutoff, m, ident, ident + 0.5);
        drawn.insert((si, cutoff, m), ident);
    }
    cache.save().unwrap();

    let back = OutcomeCache::load(&path).unwrap();
    assert_eq!(back.probes_len(), drawn.len(), "distinct draws, distinct rows");
    for (&(si, cutoff, m), &ident) in &drawn {
        assert_eq!(
            back.get_probe(scenarios[si], &params, 11, cutoff, m),
            Some((ident, ident + 0.5)),
            "probe ({si},{cutoff},{m}) reads back its own encoding"
        );
    }
    // Probe keys never leak into the outcome or baseline namespaces.
    assert_eq!(back.len(), 0);
    assert_eq!(back.baseline(scenarios[0], &params), None);
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn concurrent_eviction_and_appends_lose_no_foreign_rows() {
    // The PR-5 clobber shape, rerun against the sharded layout: one
    // writer compacts (evict_half rewrites shards) while others append.
    // Under per-shard locks the rewrite replays the live file and adopts
    // foreign rows, so the appenders' work survives the compaction.
    let path = tmp_cache("clobber");
    let params = LabParams::mini();
    let mut seed = OutcomeCache::load(&path).unwrap();
    for m in [4u32, 8, 12, 16] {
        seed.insert("base", &params, &outcome(m));
    }
    seed.save().unwrap();

    std::thread::scope(|s| {
        // The evictor: loads the 4 seeded rows, evicts 2, compacts.
        s.spawn(|| {
            let mut evictor = OutcomeCache::load(&path).unwrap();
            evictor.evict_half();
            evictor.save().unwrap();
        });
        // Appenders: fresh rows the evictor has never seen.
        for w in 0..4u32 {
            let path = &path;
            s.spawn(move || {
                let mut appender = OutcomeCache::load(path).unwrap();
                appender.insert("fresh", &params, &outcome(30 + w));
                appender.save().unwrap();
            });
        }
    });

    let back = OutcomeCache::load(&path).unwrap();
    let fresh_present = (0..4u32)
        .filter(|w| {
            back.get("fresh", &params, &CandidateSpec::op(Format::new(11, 30 + w))).is_some()
        })
        .count();
    assert_eq!(fresh_present, 4, "no appender's row was clobbered by the compaction");
    assert_eq!(back.recovered(), 0, "no torn lines under concurrency");
    let _ = std::fs::remove_dir_all(&path);
}
