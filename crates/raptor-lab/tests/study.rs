//! Study-orchestration acceptance tests: the work-stealing merge is
//! content-identical to the single-rank study at 1/2/3 ranks, a warm
//! shared-cache resume of a full study performs zero runs, a skewed pair
//! lattice still hands every rank work, and the subset resolver keeps
//! registry order.

use bigfloat::Format;
use raptor_core::Json;
use raptor_lab::{
    run_study, run_study_distributed, run_study_distributed_resumable, run_study_resumed,
    study_scenarios, CampaignSpec, CandidateSpec, LabParams, OutcomeCache, StudyReport,
};
use std::path::PathBuf;

fn mini_spec(candidates: Vec<CandidateSpec>, workers: usize) -> CampaignSpec {
    CampaignSpec {
        params: LabParams::mini(),
        candidates,
        fidelity_floor: 0.999,
        workers,
        machine: codesign::Machine::default(),
    }
}

fn tmp_cache(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("raptor-study-test-{}-{name}-cache", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

/// The acceptance criterion: byte-identical JSON (labels, every f64,
/// section order, ranking order) plus structural equality.
fn assert_studies_identical(a: &StudyReport, b: &StudyReport, what: &str) {
    assert_eq!(a.to_json().render(), b.to_json().render(), "{what}");
    assert_eq!(a, b, "{what} (structural)");
}

#[test]
fn work_stealing_study_matches_single_rank_at_1_2_3_ranks() {
    // >= 3 scenarios spanning two crates; a 3-candidate lattice, so the
    // 9-pair list divides evenly by 3 ranks and unevenly by 2 — both
    // shapes must merge byte-identically to the serial study.
    let scenarios = study_scenarios(Some("eos/cellular,ir/horner,ir/norm3")).unwrap();
    assert_eq!(scenarios.len(), 3);
    let spec = mini_spec(
        vec![
            CandidateSpec::op(Format::new(11, 24)),
            CandidateSpec::op(Format::new(11, 12)),
            CandidateSpec::op(Format::new(11, 6)),
        ],
        4,
    );
    let single = run_study(&scenarios, &spec);
    assert_eq!(single.scenarios.len(), 3);
    assert_eq!(single.ranking.len(), 3);
    for ranks in [1usize, 2, 3] {
        let stolen = run_study_distributed(&scenarios, &spec, ranks);
        assert_studies_identical(&stolen, &single, &format!("study at {ranks} ranks"));
    }
}

#[test]
fn study_sections_match_standalone_campaigns() {
    // Each per-scenario section of a study must be exactly what a
    // standalone campaign over that scenario reports.
    let scenarios = study_scenarios(Some("ir/horner,ir/norm3")).unwrap();
    let spec = mini_spec(
        vec![CandidateSpec::op(Format::new(11, 20)), CandidateSpec::op(Format::new(11, 8))],
        4,
    );
    let study = run_study_distributed(&scenarios, &spec, 2);
    for scenario in &scenarios {
        let standalone = raptor_lab::run_campaign(scenario.as_ref(), &spec);
        let section = study.scenario(scenario.name()).expect("section present");
        assert_eq!(
            section.to_json().render(),
            standalone.to_json().render(),
            "{} section == standalone campaign",
            scenario.name()
        );
    }
}

#[test]
fn warm_resume_of_a_full_study_performs_zero_runs() {
    let scenarios = study_scenarios(Some("eos/cellular,ir/horner,ir/norm3")).unwrap();
    let spec = mini_spec(
        vec![CandidateSpec::op(Format::new(11, 26)), CandidateSpec::op(Format::new(11, 9))],
        4,
    );
    let path = tmp_cache("warm");

    // Cold: every pair computes, spread across the rank pool.
    let (cold, s1) = run_study_resumed(&scenarios, &spec, 2, &path).unwrap();
    assert_eq!((s1.cached, s1.computed), (0, 6));
    assert_eq!(s1.pairs_by_rank.iter().sum::<usize>(), 6, "{:?}", s1.pairs_by_rank);

    // Warm: the whole study is served from the shared cache — zero pair
    // runs, zero baseline runs, and the report is byte-identical.
    let (warm, s2) = run_study_resumed(&scenarios, &spec, 3, &path).unwrap();
    assert_eq!((s2.cached, s2.computed), (6, 0));
    assert!(s2.pairs_by_rank.iter().all(|&n| n == 0), "{:?}", s2.pairs_by_rank);
    assert_studies_identical(&warm, &cold, "warm study resume");

    // Half-evicted: only the evicted pairs recompute; identical merge.
    let mut cache = OutcomeCache::load(&path).unwrap();
    assert_eq!(cache.len(), 6);
    cache.evict_half();
    cache.save().unwrap();
    let (half, s3) = run_study_resumed(&scenarios, &spec, 2, &path).unwrap();
    assert_eq!((s3.cached, s3.computed), (3, 3));
    assert_studies_identical(&half, &cold, "half-warm study resume");
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn campaign_and_study_share_one_cache_dir() {
    // A standalone distributed campaign warms the cache; the study then
    // reuses those rows (the key already carries the scenario name) and
    // only computes the other scenario's pairs.
    let spec = mini_spec(
        vec![CandidateSpec::op(Format::new(11, 22)), CandidateSpec::op(Format::new(11, 5))],
        4,
    );
    let path = tmp_cache("shared");
    let horner = raptor_lab::find("ir/horner").unwrap();
    let (_, s) =
        raptor_lab::run_campaign_resumed(horner.as_ref(), &spec, 2, &path).unwrap();
    assert_eq!((s.cached, s.computed), (0, 2));

    let scenarios = study_scenarios(Some("ir/horner,ir/norm3")).unwrap();
    let (study, stats) = run_study_resumed(&scenarios, &spec, 2, &path).unwrap();
    assert_eq!((stats.cached, stats.computed), (2, 2), "horner rows reused");
    assert_eq!(study.scenarios.len(), 2);
    let _ = std::fs::remove_dir_all(&path);
}

#[test]
fn consecutive_study_runs_append_distinct_stats_history_rows() {
    // Every resumed run appends exactly one scheduler-stats row to the
    // stats_history.jsonl inside the cache directory — the measurable
    // baseline future scheduler changes are compared against.
    let dir = std::env::temp_dir().join(format!("raptor-study-stats-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("study-cache");

    let scenarios = study_scenarios(Some("ir/horner,ir/norm3")).unwrap();
    let spec = mini_spec(
        vec![CandidateSpec::op(Format::new(11, 21)), CandidateSpec::op(Format::new(11, 10))],
        4,
    );
    let (_, s1) = run_study_resumed(&scenarios, &spec, 2, &path).unwrap();
    let (_, s2) = run_study_resumed(&scenarios, &spec, 3, &path).unwrap();
    // The cache is a directory after the first run; the history lives
    // inside it.
    let hist = raptor_lab::stats_history_path(&path);
    assert_eq!(hist, path.join("stats_history.jsonl"));
    assert_eq!((s1.cached, s1.computed), (0, 4));
    assert_eq!(s1.stealers, 4, "workers >= nranks: the budget is honored");
    assert!(s1.wall_s > 0.0);
    assert_eq!((s2.cached, s2.computed), (4, 0));
    assert_eq!(s2.stealers, 0, "a fully-warm resume spins up no pool");

    let text = std::fs::read_to_string(&hist).unwrap();
    assert_eq!(text.lines().filter(|l| !l.trim().is_empty()).count(), 2, "one line per run");
    let records = raptor_lab::load_stats_history(&hist).unwrap();
    assert_eq!(records.len(), 2);
    assert_eq!((records[0].ranks, records[0].stats.computed), (2, 4), "cold row first");
    assert_eq!((records[1].ranks, records[1].stats.computed), (3, 0), "warm row second");
    assert!(records[0].label.contains("study:2 scenarios"), "{}", records[0].label);
    assert_ne!(records[0], records[1], "consecutive rows are distinct");
    // The rendered trend carries both runs.
    let table = raptor_lab::render_stats_history(&records);
    assert_eq!(table.matches("study:2 scenarios").count(), 2, "{table}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn skewed_lattice_still_feeds_every_rank() {
    // Deliberate cost skew: eos/cellular pairs run orders of magnitude
    // longer than the 16-call IR kernels. With one stealer per rank and
    // a fair-start queue, every rank must still complete >= 1 pair —
    // the static block partition property work stealing must keep.
    let scenarios = study_scenarios(Some("eos/cellular,ir/horner,ir/norm3")).unwrap();
    let spec = mini_spec(
        vec![
            CandidateSpec::op(Format::new(11, 30)),
            CandidateSpec::op(Format::new(11, 14)),
            CandidateSpec::op(Format::new(11, 7)),
        ],
        3, // one stealer per rank at 3 ranks
    );
    let single = run_study(&scenarios, &spec);
    for ranks in [2usize, 3] {
        let (stolen, stats) = run_study_distributed_resumable(&scenarios, &spec, ranks, None);
        assert_eq!(stats.pairs_by_rank.len(), ranks);
        assert_eq!(stats.pairs_by_rank.iter().sum::<usize>(), 9);
        assert!(
            stats.pairs_by_rank.iter().all(|&n| n >= 1),
            "every rank stole work at {ranks} ranks: {:?}",
            stats.pairs_by_rank
        );
        // The documented clamp: total stealers = max(workers, nranks),
        // surfaced in the stats rather than silently oversubscribed.
        assert_eq!(stats.stealers, 3usize.max(ranks));
        assert_studies_identical(&stolen, &single, &format!("skewed study at {ranks} ranks"));
    }
}

#[test]
fn study_over_refined_scenarios_keeps_cutoff_pairs() {
    // A study mixing a refined scenario (KH keeps its M-1 rows) with an
    // unrefined one (ir drops them): per-scenario dedup must happen per
    // max_level, not globally.
    let scenarios = study_scenarios(Some("hydro/kelvin-helmholtz,ir/horner")).unwrap();
    let spec = mini_spec(
        vec![
            CandidateSpec::op(Format::FP32),
            CandidateSpec::op(Format::FP32).with_cutoff(1),
        ],
        4,
    );
    let (study, stats) = run_study_distributed_resumable(&scenarios, &spec, 2, None);
    assert_eq!(stats.computed, 3, "2 KH pairs + 1 deduped ir pair");
    let kh = study.scenario("hydro/kelvin-helmholtz").unwrap();
    assert_eq!(kh.outcomes.len(), 2, "refinement hierarchy keeps the M-1 row");
    let ir = study.scenario("ir/horner").unwrap();
    assert_eq!(ir.outcomes.len(), 1, "unrefined scenario dedups the M-1 twin");
}

#[test]
fn study_scenarios_resolves_subsets_in_registry_order() {
    // Full registry by default.
    let all = study_scenarios(None).unwrap();
    assert_eq!(all.len(), raptor_lab::registry().len());

    // Subsets come back in registry order regardless of spelling order.
    let subset = study_scenarios(Some("ir/horner,eos/cellular,hydro/sod")).unwrap();
    let names: Vec<&str> = subset.iter().map(|s| s.name()).collect();
    assert_eq!(names, vec!["hydro/sod", "eos/cellular", "ir/horner"]);

    // Whitespace tolerated; duplicates collapse (registry filter).
    let spaced = study_scenarios(Some(" ir/horner , ir/horner ")).unwrap();
    assert_eq!(spaced.len(), 1);

    // Unknown names and empty subsets are errors that list the registry.
    let err = match study_scenarios(Some("hydro/nope")) {
        Err(e) => e,
        Ok(_) => panic!("unknown scenario accepted"),
    };
    assert!(err.contains("hydro/nope") && err.contains("hydro/sod"), "{err}");
    assert!(study_scenarios(Some("  , ,")).is_err());
}

#[test]
fn study_ranking_is_deterministically_ordered() {
    let scenarios = study_scenarios(Some("eos/cellular,ir/horner,ir/norm3")).unwrap();
    let spec = mini_spec(
        vec![CandidateSpec::op(Format::new(11, 40)), CandidateSpec::op(Format::new(11, 4))],
        4,
    );
    let study = run_study_distributed(&scenarios, &spec, 2);
    // Sections stay in registry order; the ranking is its own sort.
    let section_names: Vec<&str> =
        study.scenarios.iter().map(|r| r.scenario.as_str()).collect();
    assert_eq!(section_names, vec!["eos/cellular", "ir/horner", "ir/norm3"]);
    // Accepted scenarios strictly before FP64 hold-outs, speedups
    // non-increasing within the accepted prefix.
    let accepted: Vec<bool> = study.ranking.iter().map(|r| r.recommended.is_some()).collect();
    assert!(accepted.windows(2).all(|w| w[0] >= w[1]), "{accepted:?}");
    let speedups: Vec<f64> = study
        .ranking
        .iter()
        .filter(|r| r.recommended.is_some())
        .map(|r| r.predicted_speedup)
        .collect();
    assert!(speedups.windows(2).all(|w| w[0] >= w[1]), "{speedups:?}");
    // JSON round-trip of the merged artifact.
    let text = study.to_json().render();
    let back = StudyReport::from_json(&Json::parse(&text).unwrap()).unwrap();
    assert_eq!(back, study);
    // The markdown table lists every scenario exactly once.
    let md = study.render_markdown();
    for name in &section_names {
        assert_eq!(md.matches(&format!("| {name} |")).count(), 1, "{name} in table");
    }
}
