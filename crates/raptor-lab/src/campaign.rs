//! The precision-search campaign engine (§6–§7.2 as one API call).
//!
//! A campaign takes one scenario, a set of candidate truncation
//! configurations (format ladder × scope × mode × AMR-level cutoff), and:
//!
//! 1. runs the scenario once at full precision and caches the baseline
//!    observable;
//! 2. runs every candidate **in parallel on the persistent sweep pool**
//!    ([`amr::pool_run`] — campaign items share workers with mesh sweeps;
//!    a candidate's own nested sweeps run inline, so candidates, not
//!    blocks, are the unit of parallelism);
//! 3. scores each candidate's fidelity against the baseline
//!    ([`Scenario::fidelity`]) and folds the live op/byte counters into
//!    the §7.2 co-design model ([`codesign::predicted_speedup`]);
//! 4. ranks survivors by `(accepted, predicted speedup, fidelity)` and
//!    emits both a human table and a machine-readable JSON summary
//!    through the shared [`raptor_core::json`] serializer.
//!
//! [`precision_search`] is the greedy refinement mode: per cutoff, bisect
//! the mantissa ladder for the minimal width that stays above the
//! fidelity floor — the `sedov_precision_hunt` workflow as a library.

use crate::cache::{OutcomeCache, ResumeStats};
use crate::scenario::{LabParams, Observable, Scenario};
use bigfloat::Format;
use codesign::{estimate_speedup, predicted_speedup, Machine};
use raptor_core::{Config, Counters, EmulPath, Json, Mode, Report, Session};
use std::sync::{Mutex, OnceLock};

/// Scope axis of a candidate configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScopeAxis {
    /// Truncate the scenario's declared regions (file scope) — the
    /// module-targeted workflow of §6.
    Regions,
    /// Truncate everything (`--raptor-truncate-all`, program scope).
    Program,
}

/// One point of the campaign's configuration lattice.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateSpec {
    /// Target format.
    pub format: Format,
    /// op-mode or mem-mode.
    pub mode: Mode,
    /// Truncation scope.
    pub scope: ScopeAxis,
    /// AMR cutoff `l` of an M-l strategy (`None` = static truncation).
    pub cutoff: Option<u32>,
    /// mem-mode deviation threshold (ignored in op-mode).
    pub mem_threshold: f64,
    /// Restrict emulation to the hardware-native path ([`EmulPath::Native`])
    /// — the §3.6 GPU constraint. Only fp32/fp64 formats qualify.
    pub native: bool,
}

impl CandidateSpec {
    /// Op-mode candidate over the scenario regions, no cutoff.
    pub fn op(format: Format) -> CandidateSpec {
        CandidateSpec {
            format,
            mode: Mode::Op,
            scope: ScopeAxis::Regions,
            cutoff: None,
            mem_threshold: 1e-6,
            native: false,
        }
    }

    /// Builder-style: set the M-l cutoff.
    pub fn with_cutoff(mut self, l: u32) -> CandidateSpec {
        self.cutoff = Some(l);
        self
    }

    /// Builder-style: program scope.
    pub fn program_scope(mut self) -> CandidateSpec {
        self.scope = ScopeAxis::Program;
        self
    }

    /// Builder-style: mem-mode at the given deviation threshold
    /// (function-scoped over the scenario regions, per Fig. 2b).
    pub fn mem(mut self, threshold: f64) -> CandidateSpec {
        self.mode = Mode::Mem;
        self.mem_threshold = threshold;
        self
    }

    /// Builder-style: restrict to the hardware-native emulation path (the
    /// GPU-port constraint of §3.6). The format must be fp32 or fp64.
    pub fn native_path(mut self) -> CandidateSpec {
        self.native = true;
        self
    }

    /// Display label, e.g. `"e11m12 op regions M-1"`.
    ///
    /// The label is the resume/merge key of cached and distributed
    /// campaigns, so it is **injective**: every field that changes the
    /// outcome appears as its own token. The format token `e{e}m{m}`
    /// encodes both widths; the mode token carries the mem-mode threshold
    /// (`mem@1e-3`) because distinct thresholds flag differently; the
    /// native-path restriction gets its own token. Tokens are
    /// space-separated and none contains a space, so no two distinct
    /// specs can render identically (checked by the uniqueness test over
    /// the shipped lattices).
    pub fn label(&self) -> String {
        let native = if self.native { " native" } else { "" };
        let mode = match self.mode {
            Mode::Op => "op".to_string(),
            Mode::Mem => format!("mem@{:e}", self.mem_threshold),
        };
        let scope = match self.scope {
            ScopeAxis::Regions => "regions",
            ScopeAxis::Program => "program",
        };
        let cutoff = match self.cutoff {
            Some(l) => format!(" M-{l}"),
            None => String::new(),
        };
        format!("{}{native} {mode} {scope}{cutoff}", self.format)
    }

    /// Resolve to a full [`Config`] against a scenario (counting always
    /// on — the co-design model needs both op populations).
    pub fn config(&self, scenario: &dyn Scenario, max_level: u32) -> Result<Config, String> {
        if self.native && !self.format.is_native() {
            return Err(format!(
                "native-path candidate requires a hardware format (fp32/fp64), got {}",
                self.format
            ));
        }
        let mut cfg = match (self.mode, self.scope) {
            (Mode::Op, ScopeAxis::Regions) => {
                Config::op_files(self.format, scenario.regions().iter().copied())
            }
            (Mode::Op, ScopeAxis::Program) => Config::op_all(self.format),
            (Mode::Mem, ScopeAxis::Regions) => Config::mem_functions(
                self.format,
                scenario.regions().iter().copied(),
                self.mem_threshold,
            ),
            (Mode::Mem, ScopeAxis::Program) => {
                return Err("mem-mode is only supported at function scope (Fig. 2b)".into())
            }
        };
        if let Some(l) = self.cutoff {
            cfg = cfg.with_cutoff(max_level, l);
        }
        if self.native {
            cfg = cfg.with_path(EmulPath::Native);
        }
        cfg = cfg.with_counting();
        cfg.validate()?;
        Ok(cfg)
    }

    /// Machine-readable spec through the shared serializer.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("label", self.label())
            .set("exp_bits", self.format.exp_bits())
            .set("man_bits", self.format.man_bits())
            .set(
                "mode",
                match self.mode {
                    Mode::Op => "op",
                    Mode::Mem => "mem",
                },
            )
            .set(
                "scope",
                match self.scope {
                    ScopeAxis::Regions => "regions",
                    ScopeAxis::Program => "program",
                },
            )
            .set(
                "cutoff",
                match self.cutoff {
                    Some(l) => Json::from(l),
                    None => Json::Null,
                },
            )
            .set("mem_threshold", self.mem_threshold)
            .set("native", self.native)
    }

    /// Parse back a document produced by [`CandidateSpec::to_json`] (the
    /// derived `label` field is ignored).
    pub fn from_json(doc: &Json) -> Result<CandidateSpec, String> {
        let exp_bits = doc.u64_field("exp_bits")? as u32;
        let man_bits = doc.u64_field("man_bits")? as u32;
        if !(2..=19).contains(&exp_bits) || !(1..=236).contains(&man_bits) {
            return Err(format!("format widths out of range: e={exp_bits} m={man_bits}"));
        }
        let mode = match doc.str_field("mode")? {
            "op" => Mode::Op,
            "mem" => Mode::Mem,
            other => return Err(format!("unknown mode `{other}`")),
        };
        let scope = match doc.str_field("scope")? {
            "regions" => ScopeAxis::Regions,
            "program" => ScopeAxis::Program,
            other => return Err(format!("unknown scope `{other}`")),
        };
        let cutoff = match doc.req("cutoff")? {
            Json::Null => None,
            c => Some(
                c.as_u64().ok_or_else(|| "cutoff is not an integer".to_string())? as u32,
            ),
        };
        Ok(CandidateSpec {
            format: Format::new(exp_bits, man_bits),
            mode,
            scope,
            cutoff,
            mem_threshold: doc.f64_field("mem_threshold")?,
            native: doc.bool_field("native")?,
        })
    }
}

/// The default format ladder, widest to narrowest storage.
pub fn format_ladder() -> Vec<Format> {
    vec![
        Format::FP32,
        Format::new(11, 20),
        Format::new(11, 12),
        Format::FP16,
        Format::BF16,
        Format::FP8_E5M2,
    ]
}

/// The default candidate lattice: the format ladder crossed with the
/// static (no cutoff) and M-1 dynamic-truncation strategies — 12 configs,
/// the §6.1 sweep shape.
pub fn default_candidates() -> Vec<CandidateSpec> {
    let mut out = Vec::new();
    for fmt in format_ladder() {
        out.push(CandidateSpec::op(fmt));
        out.push(CandidateSpec::op(fmt).with_cutoff(1));
    }
    out
}

/// The GPU-native lattice (ROADMAP §3.6): only formats a GPU port could
/// execute without the soft-float ladder — fp64 and fp32 on the
/// [`EmulPath::Native`] hardware path — each static and M-1. A campaign
/// over these answers "what would a GPU port tolerate": fp64 is the
/// identity reference, and the fp32 rows report whether single precision
/// clears the fidelity floor (and at what predicted speedup).
pub fn native_candidates() -> Vec<CandidateSpec> {
    let mut out = Vec::new();
    for fmt in [Format::FP64, Format::FP32] {
        out.push(CandidateSpec::op(fmt).native_path());
        out.push(CandidateSpec::op(fmt).with_cutoff(1).native_path());
    }
    out
}

/// The shear-layer lattice: 7 configs — a deliberately *prime* count
/// (no rank count from 2 to 6 divides it), so distributing it across
/// the typical 2/3/4-rank campaigns always exercises an uneven split.
/// Used by the Kelvin–Helmholtz scenario's campaign tests and anywhere
/// an uneven lattice is wanted.
pub fn shear_candidates() -> Vec<CandidateSpec> {
    let mut out: Vec<CandidateSpec> = [
        Format::FP32,
        Format::new(11, 20),
        Format::new(11, 12),
        Format::FP16,
        Format::BF16,
    ]
    .into_iter()
    .map(CandidateSpec::op)
    .collect();
    out.push(CandidateSpec::op(Format::FP32).with_cutoff(1));
    out.push(CandidateSpec::op(Format::new(11, 12)).with_cutoff(1));
    out
}

/// A full campaign specification.
#[derive(Clone, Debug)]
pub struct CampaignSpec {
    /// Scenario scale knobs.
    pub params: LabParams,
    /// The configuration lattice to sweep.
    pub candidates: Vec<CandidateSpec>,
    /// Acceptance threshold on fidelity (quality-of-result gate).
    pub fidelity_floor: f64,
    /// Parallel candidate runs on the sweep pool (including the calling
    /// thread).
    pub workers: usize,
    /// Hardware model for the §7.2 speedup ranking.
    pub machine: Machine,
}

impl CampaignSpec {
    /// The default sweep at the given scale: [`default_candidates`],
    /// a 0.99 fidelity floor, one worker per available CPU (capped by
    /// the candidate count at run time), the default machine.
    pub fn sweep(params: LabParams) -> CampaignSpec {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        CampaignSpec {
            params,
            candidates: default_candidates(),
            fidelity_floor: 0.99,
            workers,
            machine: Machine::default(),
        }
    }
}

/// The outcome of one candidate run.
#[derive(Clone, Debug, PartialEq)]
pub struct CandidateOutcome {
    /// The configuration swept.
    pub spec: CandidateSpec,
    /// Fidelity vs the cached full-precision baseline (`1.0` = exact).
    pub fidelity: f64,
    /// Whether fidelity cleared the campaign floor.
    pub accepted: bool,
    /// The roofline-resolved predicted speedup (ranking key).
    pub predicted_speedup: f64,
    /// Compute-bound panel of the Fig. 8 estimate.
    pub speedup_compute: f64,
    /// Memory-bound panel.
    pub speedup_memory: f64,
    /// Live counters of the run.
    pub counters: Counters,
    /// The session's full profiling report.
    pub report: Report,
    /// Set when the candidate could not run (e.g. invalid config for the
    /// scenario); such rows rank last.
    pub error: Option<String>,
}

impl CandidateOutcome {
    /// Machine-readable outcome row: the spec's fields plus the scores,
    /// counters, and embedded profiling report. This is the row format of
    /// campaign summaries, the distributed gather, and the resume cache.
    pub fn to_json(&self) -> Json {
        // Speedup panels can go non-finite on degenerate counter
        // populations: encode every score losslessly.
        let mut doc = self
            .spec
            .to_json()
            .set("fidelity", Json::from_f64_lossless(self.fidelity))
            .set("accepted", self.accepted)
            .set("predicted_speedup", Json::from_f64_lossless(self.predicted_speedup))
            .set("speedup_compute", Json::from_f64_lossless(self.speedup_compute))
            .set("speedup_memory", Json::from_f64_lossless(self.speedup_memory))
            .set("truncated_fraction", self.counters.truncated_fraction())
            .set("counters", self.counters.to_json())
            .set("report", self.report.to_json());
        if let Some(e) = &self.error {
            doc = doc.set("error", e.as_str());
        }
        doc
    }

    /// Parse back a document produced by [`CandidateOutcome::to_json`]
    /// — lossless for every finite field, so a row that crosses the
    /// minimpi wire (or sleeps in a resume cache) compares equal to the
    /// locally computed one.
    pub fn from_json(doc: &Json) -> Result<CandidateOutcome, String> {
        Ok(CandidateOutcome {
            spec: CandidateSpec::from_json(doc)?,
            fidelity: doc.f64_field_lossless("fidelity")?,
            accepted: doc.bool_field("accepted")?,
            predicted_speedup: doc.f64_field_lossless("predicted_speedup")?,
            speedup_compute: doc.f64_field_lossless("speedup_compute")?,
            speedup_memory: doc.f64_field_lossless("speedup_memory")?,
            counters: Counters::from_json(doc.req("counters")?)?,
            report: Report::from_json(doc.req("report")?)?,
            error: match doc.get("error") {
                Some(e) => Some(
                    e.as_str()
                        .ok_or_else(|| "error field is not a string".to_string())?
                        .to_string(),
                ),
                None => None,
            },
        })
    }
}

/// A completed campaign over one scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignReport {
    /// Scenario name.
    pub scenario: String,
    /// Scenario crate.
    pub crate_name: String,
    /// Scale the campaign ran at.
    pub params: LabParams,
    /// The acceptance floor used.
    pub fidelity_floor: f64,
    /// Baseline scored against itself — `1.0` by construction; kept as a
    /// harness self-check.
    pub baseline_fidelity: f64,
    /// Outcomes ranked by `(accepted, predicted speedup, fidelity)`.
    pub outcomes: Vec<CandidateOutcome>,
}

impl CampaignReport {
    /// The best accepted candidate, if any survived the fidelity gate.
    pub fn best(&self) -> Option<&CandidateOutcome> {
        self.outcomes.iter().find(|o| o.accepted && o.error.is_none())
    }

    /// Machine-readable summary through the shared serializer.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("scenario", self.scenario.as_str())
            .set("crate", self.crate_name.as_str())
            .set(
                "params",
                Json::obj()
                    .set("scale", self.params.scale)
                    .set("threads", self.params.threads),
            )
            .set("fidelity_floor", self.fidelity_floor)
            .set("baseline_fidelity", self.baseline_fidelity)
            .set(
                "candidates",
                Json::Arr(self.outcomes.iter().map(|o| o.to_json()).collect()),
            )
    }

    /// Parse back a document produced by [`CampaignReport::to_json`].
    pub fn from_json(doc: &Json) -> Result<CampaignReport, String> {
        let params = doc.req("params")?;
        Ok(CampaignReport {
            scenario: doc.str_field("scenario")?.to_string(),
            crate_name: doc.str_field("crate")?.to_string(),
            params: LabParams {
                scale: params.u64_field("scale")? as u32,
                threads: params.u64_field("threads")? as usize,
            },
            fidelity_floor: doc.f64_field("fidelity_floor")?,
            baseline_fidelity: doc.f64_field("baseline_fidelity")?,
            outcomes: doc
                .arr_field("candidates")?
                .iter()
                .map(CandidateOutcome::from_json)
                .collect::<Result<Vec<CandidateOutcome>, String>>()?,
        })
    }

    /// Human-readable ranking table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "campaign: {} ({} candidates, fidelity floor {})\n",
            self.scenario,
            self.outcomes.len(),
            self.fidelity_floor
        ));
        out.push_str(&format!(
            "{:>26} {:>10} {:>9} {:>9} {:>8}  verdict\n",
            "config", "fidelity", "speedup", "trunc %", "Gops"
        ));
        for o in &self.outcomes {
            if let Some(e) = &o.error {
                out.push_str(&format!("{:>26} failed: {e}\n", o.spec.label()));
                continue;
            }
            let (tg, fg) = o.counters.giga_ops();
            out.push_str(&format!(
                "{:>26} {:>10.6} {:>8.2}x {:>8.1}% {:>8.3}  {}\n",
                o.spec.label(),
                o.fidelity,
                o.predicted_speedup,
                100.0 * o.counters.truncated_fraction(),
                tg + fg,
                if o.accepted { "OK" } else { "too coarse" }
            ));
        }
        out
    }
}

/// Run every candidate of `spec` against `scenario` in parallel on the
/// persistent sweep pool, rank, and report.
///
/// Cutoff candidates are dropped for scenarios without a refinement
/// hierarchy (`max_level <= 1`): with no levels to spare, an M-l config
/// is bit-identical to its static twin, and reporting it as a distinct
/// strategy would be misleading.
pub fn run_campaign(scenario: &dyn Scenario, spec: &CampaignSpec) -> CampaignReport {
    // Cached full-precision baseline (run once, shared by every worker).
    let baseline = scenario.build(&spec.params).run(&Session::passthrough());
    let baseline_fidelity = scenario.fidelity(&baseline, &baseline);
    let max_level = scenario.max_level(&spec.params);

    let candidates = eligible_candidates(spec, max_level);
    let slots: Vec<Mutex<Option<CandidateOutcome>>> =
        candidates.iter().map(|_| Mutex::new(None)).collect();
    amr::pool_run(candidates.len(), spec.workers.max(1), &|i| {
        let outcome = run_candidate(scenario, spec, candidates[i], max_level, &baseline);
        *slots[i].lock().unwrap() = Some(outcome);
    });
    let mut outcomes: Vec<CandidateOutcome> = slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("pool ran every candidate"))
        .collect();
    rank_outcomes(&mut outcomes);
    CampaignReport {
        scenario: scenario.name().to_string(),
        crate_name: scenario.crate_name().to_string(),
        params: spec.params,
        fidelity_floor: spec.fidelity_floor,
        baseline_fidelity,
        outcomes,
    }
}

/// The candidates a campaign actually runs at `max_level`: cutoff
/// candidates are dropped for scenarios without a refinement hierarchy
/// (their static twins are bit-identical). Shared by the single-node and
/// distributed drivers so both see the same lattice in the same order.
pub(crate) fn eligible_candidates(
    spec: &CampaignSpec,
    max_level: u32,
) -> Vec<&CandidateSpec> {
    spec.candidates.iter().filter(|c| c.cutoff.is_none() || max_level > 1).collect()
}

/// Run campaigns for several scenarios (each scenario's candidates sweep
/// in parallel; scenarios run back to back so baselines never contend).
pub fn run_campaigns(scenarios: &[Box<dyn Scenario>], spec: &CampaignSpec) -> Vec<CampaignReport> {
    scenarios.iter().map(|s| run_campaign(s.as_ref(), spec)).collect()
}

/// Bundle several campaign reports into one JSON document.
pub fn campaigns_to_json(reports: &[CampaignReport]) -> Json {
    Json::obj().set(
        "campaigns",
        Json::Arr(reports.iter().map(|r| r.to_json()).collect()),
    )
}

pub(crate) fn run_candidate(
    scenario: &dyn Scenario,
    spec: &CampaignSpec,
    cand: &CandidateSpec,
    max_level: u32,
    baseline: &Observable,
) -> CandidateOutcome {
    let failed = |err: String, session: &Session| CandidateOutcome {
        spec: cand.clone(),
        fidelity: 0.0,
        accepted: false,
        predicted_speedup: 1.0,
        speedup_compute: 1.0,
        speedup_memory: 1.0,
        counters: Counters::default(),
        report: session.report(),
        error: Some(err),
    };
    let cfg = match cand.config(scenario, max_level) {
        Ok(cfg) => cfg,
        Err(e) => return failed(e, &Session::passthrough()),
    };
    let session = match Session::new(cfg) {
        Ok(s) => s,
        Err(e) => return failed(e, &Session::passthrough()),
    };
    let trial = scenario.build(&spec.params).run(&session);
    let fidelity = scenario.fidelity(&trial, baseline);
    let counters = session.counters();
    let s = estimate_speedup(&spec.machine, cand.format, &counters);
    CandidateOutcome {
        spec: cand.clone(),
        fidelity,
        accepted: fidelity >= spec.fidelity_floor,
        predicted_speedup: predicted_speedup(&spec.machine, cand.format, &counters),
        speedup_compute: s.compute_bound,
        speedup_memory: s.memory_bound,
        counters,
        report: session.report(),
        error: None,
    }
}

/// Re-gate and re-score a merged outcome vector, then rank it.
///
/// Cached rows may predate the calling spec: acceptance is recomputed
/// against the live fidelity floor and speedups against the live machine
/// model (the counters in every row make this free). Freshly computed
/// rows are unchanged by the recompute — it is deterministic on the same
/// inputs — so a merged report stays identical to [`run_campaign`].
/// Shared by the distributed campaign and study merge paths.
pub(crate) fn regate_and_rank(outcomes: &mut [CandidateOutcome], spec: &CampaignSpec) {
    for o in outcomes.iter_mut() {
        if o.error.is_none() {
            o.accepted = o.fidelity >= spec.fidelity_floor;
            let s = estimate_speedup(&spec.machine, o.spec.format, &o.counters);
            o.predicted_speedup = predicted_speedup(&spec.machine, o.spec.format, &o.counters);
            o.speedup_compute = s.compute_bound;
            o.speedup_memory = s.memory_bound;
        }
    }
    rank_outcomes(outcomes);
}

/// Rank: accepted first (by predicted speedup, then fidelity), rejected
/// after (by fidelity — the least-bad first), errors last. The sort is
/// stable, so outcome vectors assembled in candidate-lattice order rank
/// identically whether they were computed locally, gathered from minimpi
/// ranks, or merged out of a resume cache.
pub(crate) fn rank_outcomes(outcomes: &mut [CandidateOutcome]) {
    outcomes.sort_by(|a, b| {
        let key = |o: &CandidateOutcome| (o.error.is_none(), o.accepted);
        key(b)
            .cmp(&key(a))
            .then_with(|| {
                if a.accepted && b.accepted {
                    b.predicted_speedup
                        .partial_cmp(&a.predicted_speedup)
                        .unwrap_or(core::cmp::Ordering::Equal)
                } else {
                    core::cmp::Ordering::Equal
                }
            })
            .then_with(|| b.fidelity.partial_cmp(&a.fidelity).unwrap_or(core::cmp::Ordering::Equal))
    });
}

// ---------------------------------------------------------------------------
// Greedy refinement: minimal-precision search
// ---------------------------------------------------------------------------

/// Greedy precision-search specification.
#[derive(Clone, Debug)]
pub struct SearchSpec {
    /// Scenario scale knobs.
    pub params: LabParams,
    /// Exponent width of every probed format (11 = FP64's).
    pub exp_bits: u32,
    /// Inclusive mantissa-bit search range.
    pub mantissa: (u32, u32),
    /// Acceptance threshold on fidelity.
    pub fidelity_floor: f64,
    /// The M-l cutoffs to search independently (each gets its own row).
    pub cutoffs: Vec<u32>,
    /// Parallel rows on the sweep pool.
    pub workers: usize,
}

impl SearchSpec {
    /// Default search: mantissa 2..=52 at exponent 11, cutoffs M-0..M-2.
    pub fn new(params: LabParams, fidelity_floor: f64) -> SearchSpec {
        SearchSpec {
            params,
            exp_bits: 11,
            mantissa: (2, 52),
            fidelity_floor,
            cutoffs: vec![0, 1, 2],
            workers: 4,
        }
    }
}

/// One row of a precision search: the minimal safe mantissa width for a
/// cutoff strategy, plus every probe the bisection took.
#[derive(Clone, Debug, PartialEq)]
pub struct SearchRow {
    /// The cutoff `l` of this row's M-l strategy.
    pub cutoff: u32,
    /// Minimal mantissa bits with fidelity >= the floor (`None` when even
    /// the widest probe fails).
    pub minimal_m: Option<u32>,
    /// Fidelity at `minimal_m` (or at the widest probe when `None`).
    pub fidelity: f64,
    /// Truncated-op fraction at the minimal width.
    pub truncated_fraction: f64,
    /// Every `(mantissa, fidelity)` probe, in probe order.
    pub probes: Vec<(u32, f64)>,
}

impl SearchRow {
    /// Machine-readable row through the shared serializer.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("cutoff", self.cutoff)
            .set(
                "minimal_mantissa",
                match self.minimal_m {
                    Some(m) => Json::from(m),
                    None => Json::Null,
                },
            )
            .set("fidelity", self.fidelity)
            .set("truncated_fraction", self.truncated_fraction)
            .set(
                "probes",
                Json::Arr(
                    self.probes
                        .iter()
                        .map(|&(m, f)| Json::obj().set("mantissa", m).set("fidelity", f))
                        .collect(),
                ),
            )
    }

    /// Parse back a document produced by [`SearchRow::to_json`] — search
    /// rows gathered from minimpi ranks travel in this form.
    pub fn from_json(doc: &Json) -> Result<SearchRow, String> {
        let minimal_m = match doc.req("minimal_mantissa")? {
            Json::Null => None,
            m => Some(
                m.as_u64().ok_or_else(|| "minimal_mantissa is not an integer".to_string())?
                    as u32,
            ),
        };
        let probes = doc
            .arr_field("probes")?
            .iter()
            .map(|p| Ok((p.u64_field("mantissa")? as u32, p.f64_field("fidelity")?)))
            .collect::<Result<Vec<(u32, f64)>, String>>()?;
        Ok(SearchRow {
            cutoff: doc.u64_field("cutoff")? as u32,
            minimal_m,
            fidelity: doc.f64_field("fidelity")?,
            truncated_fraction: doc.f64_field("truncated_fraction")?,
            probes,
        })
    }
}

/// Greedily bisect the mantissa ladder per cutoff for the minimal width
/// that clears the fidelity floor. Rows run in parallel on the sweep
/// pool; each probe is one full scenario run.
pub fn precision_search(scenario: &dyn Scenario, spec: &SearchSpec) -> Vec<SearchRow> {
    precision_search_resumable(scenario, spec, None).0
}

/// [`precision_search`] against a probe cache. Every bisection probe is
/// a deterministic `(scenario, scale, threads, exp_bits, cutoff, m)`
/// point, so a cached `(fidelity, truncated_fraction)` is served without
/// running the scenario and the chain advances exactly as if the probe
/// had run. The baseline reference run is built lazily, only when some
/// probe actually misses — a fully-warm re-hunt of a completed search
/// performs **zero** scenario runs. Fresh probes are recorded back into
/// the cache (staged; the caller saves).
pub fn precision_search_resumable(
    scenario: &dyn Scenario,
    spec: &SearchSpec,
    cache: Option<&mut OutcomeCache>,
) -> (Vec<SearchRow>, ResumeStats) {
    let max_level = scenario.max_level(&spec.params);
    let baseline: OnceLock<Observable> = OnceLock::new();
    let cache = Mutex::new(cache);
    let stats = Mutex::new(ResumeStats::default());
    let slots: Vec<Mutex<Option<SearchRow>>> =
        spec.cutoffs.iter().map(|_| Mutex::new(None)).collect();
    amr::pool_run(spec.cutoffs.len(), spec.workers.max(1), &|i| {
        let cutoff = spec.cutoffs[i];
        let (mut chain, first) = ProbeChain::new(cutoff, spec.mantissa, spec.fidelity_floor);
        let mut pending = Some(first);
        while let Some(m) = pending {
            let hit = cache
                .lock()
                .unwrap()
                .as_deref()
                .and_then(|c| c.get_probe(scenario.name(), &spec.params, spec.exp_bits, cutoff, m));
            let (fid, frac) = match hit {
                Some(v) => {
                    stats.lock().unwrap().cached += 1;
                    v
                }
                None => {
                    let base = baseline
                        .get_or_init(|| scenario.build(&spec.params).run(&Session::passthrough()));
                    let v = run_probe(scenario, spec, cutoff, m, max_level, base);
                    if let Some(c) = cache.lock().unwrap().as_deref_mut() {
                        c.insert_probe(
                            scenario.name(),
                            &spec.params,
                            spec.exp_bits,
                            cutoff,
                            m,
                            v.0,
                            v.1,
                        );
                    }
                    stats.lock().unwrap().computed += 1;
                    v
                }
            };
            pending = chain.advance(m, fid, frac);
        }
        *slots[i].lock().unwrap() = Some(chain.into_row());
    });
    let rows = slots
        .into_iter()
        .map(|s| s.into_inner().unwrap().expect("pool ran every row"))
        .collect();
    let stats = *stats.lock().unwrap();
    (rows, stats)
}

/// The greedy-bisection decision machine of one M-l search row,
/// decoupled from *where* its probes run: feed it probe results, it
/// answers with the next mantissa width to probe (or finishes).
///
/// Both search drivers run this exact machine — [`precision_search`]
/// inline on a pool worker, the distributed search with each pending
/// probe as a work-stealing task and the chain state held by the rank-0
/// server — so their rows are identical **by construction**, probe for
/// probe.
///
/// Probe order (the serial contract): bracket at `hi` (if even the
/// widest mantissa fails, report and bail), check `lo` (if the narrowest
/// passes, it is minimal), then bisect. Fidelity is monotone enough in
/// the mantissa width for bisection (the §6.1 error ladders); occasional
/// non-monotone blips (the Fig. 7b AMR anomaly) cost at most a
/// slightly-wider answer, never an infinite loop.
pub(crate) struct ProbeChain {
    cutoff: u32,
    floor: f64,
    lo: u32,
    hi: u32,
    phase: ChainPhase,
    probes: Vec<(u32, f64)>,
    /// Narrowest passing probe so far: `(m, fidelity, truncated_fraction)`.
    best: Option<(u32, f64, f64)>,
    /// Set once the chain finishes: `(minimal_m, fidelity, fraction)`.
    result: Option<(Option<u32>, f64, f64)>,
}

enum ChainPhase {
    /// Waiting on the widest probe (`hi`).
    Bracket,
    /// Waiting on the narrowest probe (`lo`).
    Narrow,
    /// Waiting on a bisection midpoint.
    Bisect,
    Finished,
}

impl ProbeChain {
    /// Start a chain; returns the machine and its first probe width.
    pub(crate) fn new(cutoff: u32, mantissa: (u32, u32), floor: f64) -> (ProbeChain, u32) {
        let (lo, hi) = mantissa;
        let chain = ProbeChain {
            cutoff,
            floor,
            lo,
            hi,
            phase: ChainPhase::Bracket,
            probes: Vec::new(),
            best: None,
            result: None,
        };
        (chain, hi)
    }

    /// Feed the result of the pending probe at width `m`; returns the
    /// next width to probe, or `None` once the chain is finished.
    pub(crate) fn advance(&mut self, m: u32, fid: f64, frac: f64) -> Option<u32> {
        self.probes.push((m, fid));
        match self.phase {
            ChainPhase::Bracket => {
                if fid < self.floor {
                    self.finish(None, fid, frac);
                    None
                } else {
                    self.best = Some((self.hi, fid, frac));
                    self.phase = ChainPhase::Narrow;
                    Some(self.lo)
                }
            }
            ChainPhase::Narrow => {
                if fid >= self.floor {
                    self.finish(Some(self.lo), fid, frac);
                    None
                } else {
                    self.bisect_or_finish()
                }
            }
            ChainPhase::Bisect => {
                if fid >= self.floor {
                    self.hi = m;
                    self.best = Some((m, fid, frac));
                } else {
                    self.lo = m;
                }
                self.bisect_or_finish()
            }
            ChainPhase::Finished => unreachable!("no probe is pending on a finished chain"),
        }
    }

    fn bisect_or_finish(&mut self) -> Option<u32> {
        if self.hi - self.lo > 1 {
            self.phase = ChainPhase::Bisect;
            Some(self.lo + (self.hi - self.lo) / 2)
        } else {
            let (m, fid, frac) = self.best.expect("bracket probe passed");
            self.finish(Some(m), fid, frac);
            None
        }
    }

    fn finish(&mut self, minimal_m: Option<u32>, fid: f64, frac: f64) {
        self.phase = ChainPhase::Finished;
        self.result = Some((minimal_m, fid, frac));
    }

    /// Whether the chain has reached its answer.
    pub(crate) fn finished(&self) -> bool {
        matches!(self.phase, ChainPhase::Finished)
    }

    /// The finished chain as its search row (panics on an unfinished
    /// chain — a scheduler bug, not a data condition).
    pub(crate) fn into_row(self) -> SearchRow {
        let (minimal_m, fidelity, truncated_fraction) =
            self.result.expect("chain ran to completion");
        SearchRow {
            cutoff: self.cutoff,
            minimal_m,
            fidelity,
            truncated_fraction,
            probes: self.probes,
        }
    }
}

/// Run one bisection probe: a full scenario run at `e{exp_bits}m{m}`
/// under the M-`cutoff` strategy, scored against the baseline. Returns
/// `(fidelity, truncated_fraction)`. Shared by the serial rows and the
/// distributed probe tasks.
pub(crate) fn run_probe(
    scenario: &dyn Scenario,
    spec: &SearchSpec,
    cutoff: u32,
    m: u32,
    max_level: u32,
    baseline: &Observable,
) -> (f64, f64) {
    let cand = CandidateSpec::op(Format::new(spec.exp_bits, m)).with_cutoff(cutoff);
    let cfg = cand.config(scenario, max_level).expect("op candidates validate");
    let session = Session::new(cfg).expect("validated");
    let trial = scenario.build(&spec.params).run(&session);
    (scenario.fidelity(&trial, baseline), session.counters().truncated_fraction())
}

/// JSON summary of a precision search.
pub fn search_to_json(scenario: &str, rows: &[SearchRow]) -> Json {
    Json::obj()
        .set("scenario", scenario)
        .set("rows", Json::Arr(rows.iter().map(|r| r.to_json()).collect()))
}
