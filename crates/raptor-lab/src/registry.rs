//! The scenario registry: every workload the reproduction can sweep,
//! behind the one [`Scenario`] trait.
//!
//! Four crates contribute scenarios:
//!
//! * **hydro** — Sedov blast and Sod shock tube, each in a second
//!   parameterization (WENO5 reconstruction; HLL Riemann solver) to widen
//!   the numerical surface precision errors can attack, plus the
//!   Kelvin–Helmholtz shear layer (periodic, chaotic error growth; its
//!   natural campaign lattice, [`crate::shear_candidates`], has a prime
//!   candidate count so distributed sharding's remainder path is
//!   exercised by a real scenario);
//! * **incomp** — the rising bubble, plus a viscous (Re 10) and a
//!   density-contrast (100:1) variant;
//! * **eos** — the cellular burning front, plus hot-ignition and
//!   dense-fuel variants that stress different table regions;
//! * **raptor-ir** — interpreted IR kernels truncated through the
//!   compiler pass (§7.3's runtime format selection), closing the loop
//!   between the `Tracked` runtime and the instrumentation pass.

use crate::scenario::{LabParams, Observable, Runnable, Scenario};
use eos::CellularInit;
use hydro::{Problem, ReconKind, RiemannKind};
use incomp::InsParams;
use raptor_core::{region, Session, Tracked};

/// All registered scenarios. Names are unique, `<crate>/<variant>`.
pub fn registry() -> Vec<Box<dyn Scenario>> {
    vec![
        Box::new(HydroScenario {
            name: "hydro/sedov",
            problem: Problem::Sedov,
            recon: ReconKind::Plm,
            riemann: RiemannKind::Hllc,
        }),
        Box::new(HydroScenario {
            name: "hydro/sod",
            problem: Problem::Sod,
            recon: ReconKind::Plm,
            riemann: RiemannKind::Hllc,
        }),
        Box::new(HydroScenario {
            name: "hydro/sedov-weno5",
            problem: Problem::Sedov,
            recon: ReconKind::Weno5,
            riemann: RiemannKind::Hllc,
        }),
        Box::new(HydroScenario {
            name: "hydro/sod-hll",
            problem: Problem::Sod,
            recon: ReconKind::Plm,
            riemann: RiemannKind::Hll,
        }),
        Box::new(HydroScenario {
            name: "hydro/kelvin-helmholtz",
            problem: Problem::KelvinHelmholtz,
            recon: ReconKind::Plm,
            riemann: RiemannKind::Hllc,
        }),
        Box::new(BubbleScenario { name: "incomp/bubble", params: InsParams::default() }),
        Box::new(BubbleScenario {
            name: "incomp/bubble-viscous",
            params: InsParams { re: 10.0, ..InsParams::default() },
        }),
        Box::new(BubbleScenario {
            name: "incomp/bubble-contrast",
            params: InsParams { rho_air: 1e-2, mu_air: 1e-1, ..InsParams::default() },
        }),
        Box::new(CellularScenario { name: "eos/cellular", init: CellularInit::default() }),
        Box::new(CellularScenario {
            name: "eos/cellular-hot",
            init: CellularInit { t_ignite: 6e9, ..CellularInit::default() },
        }),
        Box::new(CellularScenario {
            name: "eos/cellular-dense",
            init: CellularInit { rho0: 3e7, ..CellularInit::default() },
        }),
        Box::new(IrScenario { name: "ir/horner", kind: IrKind::Horner }),
        Box::new(IrScenario { name: "ir/norm3", kind: IrKind::Norm3 }),
    ]
}

/// Look a scenario up by registry name.
pub fn find(name: &str) -> Option<Box<dyn Scenario>> {
    registry().into_iter().find(|s| s.name() == name)
}

/// Resolve a study's scenario set: `None` selects the full registry, and
/// `Some("a,b,c")` a comma-separated subset (the CLI `--scenarios` flag).
/// Scenarios come back in **registry order** regardless of how the subset
/// was written, so two studies over the same set enumerate the same
/// `(scenario, candidate)` pair lattice; unknown names and empty subsets
/// are errors listing what is registered.
pub fn study_scenarios(subset: Option<&str>) -> Result<Vec<Box<dyn Scenario>>, String> {
    let all = registry();
    let Some(subset) = subset else { return Ok(all) };
    let wanted: Vec<&str> = subset.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
    if wanted.is_empty() {
        return Err("--scenarios wants a comma-separated list of registry names".into());
    }
    for name in &wanted {
        if !all.iter().any(|s| s.name() == *name) {
            let known: Vec<&str> = all.iter().map(|s| s.name()).collect();
            return Err(format!("unknown scenario `{name}`; registered: {}", known.join(", ")));
        }
    }
    Ok(all.into_iter().filter(|s| wanted.contains(&s.name())).collect())
}

// ---------------------------------------------------------------------------
// hydro: compressible Euler on AMR
// ---------------------------------------------------------------------------

struct HydroScenario {
    name: &'static str,
    problem: Problem,
    recon: ReconKind,
    riemann: RiemannKind,
}

impl HydroScenario {
    /// `(max_level, t_end, max_steps)` per scale.
    fn scale(&self, p: &LabParams) -> (u32, f64, usize) {
        match p.scale {
            0 => (2, 0.01, 60),
            1 => (3, 0.015, 10_000),
            _ => (4, 0.03, 100_000),
        }
    }
}

impl Scenario for HydroScenario {
    fn name(&self) -> &'static str {
        self.name
    }

    fn regions(&self) -> &'static [&'static str] {
        &["Hydro"]
    }

    fn max_level(&self, params: &LabParams) -> u32 {
        self.scale(params).0
    }

    fn build(&self, params: &LabParams) -> Box<dyn Runnable> {
        let (max_level, t_end, max_steps) = self.scale(params);
        let (problem, recon, riemann) = (self.problem, self.recon, self.riemann);
        let threads = params.threads;
        Box::new(move |session: &Session| {
            // 4x4 root blocks keep genuinely coarse level-1 leaves away
            // from the feature, so the M-l cutoff candidates have levels
            // to spare (the bench harness uses the same layout).
            let mut sim = hydro::setup_with_roots(problem, max_level, 8, recon, 4);
            sim.hydro.riemann = riemann;
            sim.run::<Tracked>(t_end, max_steps, threads, session);
            // Density on a uniform sampling grid: the sfocu-style
            // comparison surface, independent of the final block layout
            // (truncation noise may perturb refinement).
            Observable { values: sim.density_field(32) }
        })
    }
}

// ---------------------------------------------------------------------------
// incomp: two-phase rising bubble
// ---------------------------------------------------------------------------

struct BubbleScenario {
    name: &'static str,
    params: InsParams,
}

impl BubbleScenario {
    /// `(n, max_level, t_end, max_steps)` per scale.
    fn scale(&self, p: &LabParams) -> (usize, u32, f64, usize) {
        match p.scale {
            0 => (16, 2, 0.05, 40),
            1 => (32, 3, 0.15, 10_000),
            _ => (64, 3, 0.5, 100_000),
        }
    }
}

impl Scenario for BubbleScenario {
    fn name(&self) -> &'static str {
        self.name
    }

    fn regions(&self) -> &'static [&'static str] {
        &["INS/advection", "INS/diffusion"]
    }

    fn max_level(&self, params: &LabParams) -> u32 {
        self.scale(params).1
    }

    fn build(&self, params: &LabParams) -> Box<dyn Runnable> {
        let (n, max_level, t_end, max_steps) = self.scale(params);
        let ins = self.params;
        Box::new(move |session: &Session| {
            let mut sim = incomp::setup_bubble(n, max_level, ins);
            sim.run::<Tracked>(t_end, max_steps, session);
            // Interior level-set field plus integral diagnostics: the
            // level set carries the interface (Fig. 1's observable), the
            // centroid/area capture gross dynamics.
            let mut values = Vec::with_capacity(sim.grid.nx * sim.grid.ny + 3);
            for j in 0..sim.grid.ny {
                for i in 0..sim.grid.nx {
                    values.push(sim.grid.phi[sim.grid.at(i as isize, j as isize)]);
                }
            }
            let (cx, cy) = sim.centroid();
            values.push(cx);
            values.push(cy);
            values.push(sim.area());
            Observable { values }
        })
    }
}

// ---------------------------------------------------------------------------
// eos: cellular detonation (table EOS + Newton + burning)
// ---------------------------------------------------------------------------

struct CellularScenario {
    name: &'static str,
    init: CellularInit,
}

impl CellularScenario {
    /// `(root blocks, steps)` per scale.
    fn scale(&self, p: &LabParams) -> (usize, usize) {
        match p.scale {
            0 => (2, 3),
            1 => (4, 8),
            _ => (6, 16),
        }
    }
}

impl Scenario for CellularScenario {
    fn name(&self) -> &'static str {
        self.name
    }

    fn regions(&self) -> &'static [&'static str] {
        &["Eos"]
    }

    fn max_level(&self, _params: &LabParams) -> u32 {
        1 // thin unrefined domain
    }

    fn build(&self, params: &LabParams) -> Box<dyn Runnable> {
        let (blocks, steps) = self.scale(params);
        let init = self.init;
        Box::new(move |session: &Session| {
            let mut sim = eos::setup_cellular(blocks, 8, init);
            sim.run::<Tracked>(steps, session);
            // Carbon mass fraction along the midline (the burn-front
            // profile), the front position, and the Newton failure
            // fraction — the §6.1 convergence observable that collapses
            // when the EOS is truncated below ~40 bits.
            let (x0, x1, _, _) = sim.mesh.params.domain;
            let nsamp = 64;
            let mut values: Vec<f64> = (0..nsamp)
                .map(|i| {
                    let x = x0 + (x1 - x0) * (i as f64 + 0.5) / nsamp as f64;
                    amr::sample_point(&sim.mesh, eos::XCARBON, x, 0.5)
                })
                .collect();
            values.push(sim.front_position(nsamp));
            let (calls, fails, _) = sim.eos.stats();
            values.push(fails as f64 / calls.max(1) as f64);
            Observable { values }
        })
    }
}

// ---------------------------------------------------------------------------
// raptor-ir: interpreted kernels truncated by the compiler pass
// ---------------------------------------------------------------------------

#[derive(Clone, Copy)]
enum IrKind {
    /// Horner evaluation of a degree-4 polynomial; `eval` calls `poly`
    /// twice, so the pass's transitive-clone walk is exercised.
    Horner,
    /// 3-vector norm through a shared `sq` helper plus a `sqrt`.
    Norm3,
}

struct IrScenario {
    name: &'static str,
    kind: IrKind,
}

impl IrScenario {
    fn module(&self) -> (raptor_ir::Module, &'static str) {
        use raptor_ir::{BinOp, Function, Inst, Module};
        let mut m = Module::default();
        match self.kind {
            IrKind::Horner => {
                // poly(x) = (((0.3 x - 1.7) x + 2.1) x - 0.9) x + 4.2
                let mut poly = Function::build("poly", 1);
                let mut acc = poly.push(Inst::Const(0.3));
                for c in [-1.7, 2.1, -0.9, 4.2] {
                    let prod = poly.push(Inst::Bin(BinOp::FMul, acc, 0));
                    let cv = poly.push(Inst::Const(c));
                    acc = poly.push(Inst::Bin(BinOp::FAdd, prod, cv));
                }
                m.add(poly.ret(acc));
                // eval(x, y) = poly(x) / poly(y)
                let mut eval = Function::build("eval", 2);
                let px = eval.push(Inst::Call("poly".into(), vec![0]));
                let py = eval.push(Inst::Call("poly".into(), vec![1]));
                let q = eval.push(Inst::Bin(BinOp::FDiv, px, py));
                m.add(eval.ret(q));
                (m, "eval")
            }
            IrKind::Norm3 => {
                let mut sq = Function::build("sq", 1);
                let s = sq.push(Inst::Bin(BinOp::FMul, 0, 0));
                m.add(sq.ret(s));
                // norm3(x, y, z) = sqrt(x^2 + y^2 + z^2)
                let mut norm = Function::build("norm3", 3);
                let sx = norm.push(Inst::Call("sq".into(), vec![0]));
                let sy = norm.push(Inst::Call("sq".into(), vec![1]));
                let sz = norm.push(Inst::Call("sq".into(), vec![2]));
                let sxy = norm.push(Inst::Bin(BinOp::FAdd, sx, sy));
                let sum = norm.push(Inst::Bin(BinOp::FAdd, sxy, sz));
                let r = norm.push(Inst::Sqrt(sum));
                m.add(norm.ret(r));
                (m, "norm3")
            }
        }
    }

    fn inputs(&self, p: &LabParams) -> Vec<Vec<f64>> {
        let n = match p.scale {
            0 => 16,
            1 => 64,
            _ => 256,
        };
        let nargs = match self.kind {
            IrKind::Horner => 2,
            IrKind::Norm3 => 3,
        };
        // A deterministic low-discrepancy-ish input grid spanning a few
        // decades of magnitude.
        (0..n)
            .map(|i| {
                (0..nargs)
                    .map(|a| {
                        let t = (i * nargs + a) as f64 / (n * nargs) as f64;
                        (0.1 + 3.0 * t) * 10f64.powf(2.0 * t - 1.0)
                    })
                    .collect()
            })
            .collect()
    }

    fn region_name(&self) -> &'static str {
        match self.kind {
            IrKind::Horner => "IR/horner",
            IrKind::Norm3 => "IR/norm3",
        }
    }
}

impl Scenario for IrScenario {
    fn name(&self) -> &'static str {
        self.name
    }

    fn crate_name(&self) -> &'static str {
        "raptor-ir"
    }

    fn regions(&self) -> &'static [&'static str] {
        match self.kind {
            IrKind::Horner => &["IR/horner"],
            IrKind::Norm3 => &["IR/norm3"],
        }
    }

    fn max_level(&self, _params: &LabParams) -> u32 {
        1 // no mesh; the cutoff axis degenerates to on/off
    }

    fn build(&self, params: &LabParams) -> Box<dyn Runnable> {
        let (module, entry) = self.module();
        let inputs = self.inputs(params);
        let region_name = self.region_name();
        Box::new(move |session: &Session| {
            use raptor_ir::{trunc_name, truncate_functions, Interp, ScratchMode};
            // The §7.3 recipe: clones are compiled per format and selected
            // at run time. The session decides — through the same scope /
            // exclusion / cutoff resolution every other scenario uses —
            // whether this region is truncated, and to which format.
            let fmt = {
                let _g = session.install();
                let _r = region(region_name);
                if raptor_core::is_active() {
                    Some(session.config().format)
                } else {
                    None
                }
            };
            let mut m = module.clone();
            let mut it = Interp::new(&m, ScratchMode::ReusedPad);
            let callee = match fmt {
                Some(f) if f != bigfloat::Format::FP64 => {
                    truncate_functions(&mut m, &[entry], f);
                    it = Interp::new(&m, ScratchMode::ReusedPad);
                    trunc_name(entry, f)
                }
                _ => entry.to_string(),
            };
            let values = inputs.iter().map(|args| it.call(&callee, args)).collect();
            Observable { values }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_is_wide_and_unique() {
        let reg = registry();
        assert_eq!(reg.len(), 13, "the full registry: {}", reg.len());
        assert!(find("hydro/kelvin-helmholtz").is_some());
        let names: BTreeSet<_> = reg.iter().map(|s| s.name()).collect();
        assert_eq!(names.len(), reg.len(), "names unique");
        let crates: BTreeSet<_> = reg.iter().map(|s| s.crate_name()).collect();
        assert!(crates.len() >= 4, "scenarios span >= 4 crates: {crates:?}");
        assert!(crates.contains("hydro") && crates.contains("incomp"));
        assert!(crates.contains("eos") && crates.contains("raptor-ir"));
        for s in &reg {
            assert!(!s.regions().is_empty(), "{} declares regions", s.name());
        }
        assert!(find("hydro/sedov").is_some());
        assert!(find("nope/nope").is_none());
    }

    #[test]
    fn ir_scenarios_deviate_under_truncation_and_match_at_passthrough() {
        let p = LabParams::mini();
        for name in ["ir/horner", "ir/norm3"] {
            let sc = find(name).unwrap();
            let base = sc.build(&p).run(&Session::passthrough());
            let again = sc.build(&p).run(&Session::passthrough());
            assert_eq!(base, again, "{name} deterministic");
            assert_eq!(sc.fidelity(&base, &base), 1.0);
            let cfg = raptor_core::Config::op_files(
                bigfloat::Format::new(11, 8),
                sc.regions().iter().copied(),
            );
            let sess = Session::new(cfg).unwrap();
            let trunc = sc.build(&p).run(&sess);
            let fid = sc.fidelity(&trunc, &base);
            assert!(fid < 1.0, "{name} deviates: {fid}");
            assert!(fid > 0.5, "{name} not garbage: {fid}");
        }
    }

    #[test]
    fn hydro_scenario_baseline_is_deterministic_and_exact() {
        let p = LabParams::mini();
        let sc = find("hydro/sod").unwrap();
        let a = sc.build(&p).run(&Session::passthrough());
        let b = sc.build(&p).run(&Session::passthrough());
        assert_eq!(a, b);
        assert_eq!(sc.fidelity(&a, &b), 1.0);
        assert!(a.values.iter().all(|v| v.is_finite()));
    }
}
