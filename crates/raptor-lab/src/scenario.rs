//! The unified `Scenario` layer: one trait every workload crate
//! implements, so precision-search campaigns can sweep Sedov blasts,
//! rising bubbles, burning fronts, and IR kernels through a single API.
//!
//! A [`Scenario`] is a registry entry — a named, parameterizable workload
//! with a declared set of RAPTOR region prefixes. [`Scenario::build`]
//! instantiates it at a [`LabParams`] scale as a boxed [`Runnable`];
//! running one consumes a `&Session` (the unified workload contract —
//! reference runs pass [`Session::passthrough`]) and distills the final
//! state into an [`Observable`], a plain vector of physically meaningful
//! numbers. [`Scenario::fidelity`] scores a trial observable against the
//! full-precision baseline on a `[0, 1]` scale where `1.0` means
//! bit-identical.

use raptor_core::Session;

/// Scale knobs shared by every scenario. Each scenario maps the abstract
/// scale to its own grid sizes and step counts, so one `LabParams` drives
/// heterogeneous workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabParams {
    /// Abstract problem scale: 0 = mini (deterministic tests, CI smoke),
    /// 1 = demo (example binaries), 2+ = larger studies.
    pub scale: u32,
    /// Threads available *inside* one scenario run. Campaign candidates
    /// already run in parallel on the sweep pool, and nested sweeps run
    /// inline there, so 1 is the right default for campaigns.
    pub threads: usize,
}

impl LabParams {
    /// Mini scale: coarse grids, few steps — deterministic and fast.
    pub fn mini() -> LabParams {
        LabParams { scale: 0, threads: 1 }
    }

    /// Demo scale: the example binaries' default.
    pub fn demo() -> LabParams {
        LabParams { scale: 1, threads: 1 }
    }
}

impl Default for LabParams {
    fn default() -> Self {
        LabParams::demo()
    }
}

/// The distilled result of one scenario run: a vector of observables
/// (sampled fields, front positions, interface metrics, kernel outputs).
/// Two runs of the same scenario at the same [`LabParams`] produce
/// vectors of identical length and meaning.
#[derive(Clone, Debug, PartialEq)]
pub struct Observable {
    /// The observable values.
    pub values: Vec<f64>,
}

/// A built scenario instance, ready to run exactly once.
pub trait Runnable: Send {
    /// Run to completion under `session` and distill the final state.
    /// Reference runs pass [`Session::passthrough`].
    fn run(self: Box<Self>, session: &Session) -> Observable;
}

/// Blanket impl so scenarios can return plain closures.
impl<F> Runnable for F
where
    F: FnOnce(&Session) -> Observable + Send,
{
    fn run(self: Box<Self>, session: &Session) -> Observable {
        (*self)(session)
    }
}

/// A named, parameterizable workload in the scenario registry.
pub trait Scenario: Send + Sync {
    /// Registry name, `<crate>/<variant>` (e.g. `"hydro/sedov"`).
    fn name(&self) -> &'static str;

    /// The workload crate this scenario exercises (`"hydro"`, `"incomp"`,
    /// `"eos"`, `"raptor-ir"`).
    fn crate_name(&self) -> &'static str {
        let name = self.name();
        match name.split_once('/') {
            Some((c, _)) => match c {
                "hydro" => "hydro",
                "incomp" => "incomp",
                "eos" => "eos",
                "ir" => "raptor-ir",
                _ => "unknown",
            },
            None => "unknown",
        }
    }

    /// RAPTOR region prefixes this scenario's kernels run under — the
    /// default truncation scope for campaign candidates.
    fn regions(&self) -> &'static [&'static str];

    /// Maximum AMR level of a run at `params` (1 for unrefined
    /// workloads); the `M` of the campaign's M-l cutoff candidates.
    fn max_level(&self, params: &LabParams) -> u32;

    /// Instantiate the scenario at a scale.
    fn build(&self, params: &LabParams) -> Box<dyn Runnable>;

    /// Score a trial observable against the full-precision baseline:
    /// `1.0` iff identical, decreasing monotonically as the trial
    /// deviates. The default maps the relative L1 distance `e` to
    /// `1 / (1 + e)`; scenarios with a domain metric override this.
    fn fidelity(&self, trial: &Observable, baseline: &Observable) -> f64 {
        fidelity_from_error(relative_l1(&trial.values, &baseline.values))
    }
}

/// Relative L1 distance `Σ|t - b| / Σ|b|` (falls back to the absolute
/// distance for an all-zero baseline). NaNs in the trial — a diverged
/// run — count as infinite error.
pub fn relative_l1(trial: &[f64], baseline: &[f64]) -> f64 {
    if trial.len() != baseline.len() {
        return f64::INFINITY;
    }
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&t, &b) in trial.iter().zip(baseline) {
        if !t.is_finite() {
            return f64::INFINITY;
        }
        num += (t - b).abs();
        den += b.abs();
    }
    if den > 0.0 {
        num / den
    } else {
        num
    }
}

/// Map an error metric (`0` = exact, larger = worse) onto the `[0, 1]`
/// fidelity scale: `1 / (1 + e)`. Exact runs score exactly `1.0`; the
/// mapping is strictly monotone, so format-ladder ordering survives.
pub fn fidelity_from_error(error: f64) -> f64 {
    if error.is_nan() {
        return 0.0;
    }
    1.0 / (1.0 + error.max(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_mapping_is_exact_at_zero_and_monotone() {
        assert_eq!(fidelity_from_error(0.0), 1.0);
        let f1 = fidelity_from_error(1e-6);
        let f2 = fidelity_from_error(1e-3);
        let f3 = fidelity_from_error(1.0);
        assert!(1.0 > f1 && f1 > f2 && f2 > f3 && f3 > 0.0);
        assert_eq!(fidelity_from_error(f64::INFINITY), 0.0);
        assert_eq!(fidelity_from_error(f64::NAN), 0.0);
    }

    #[test]
    fn relative_l1_basics() {
        assert_eq!(relative_l1(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((relative_l1(&[1.1, 2.0], &[1.0, 2.0]) - 0.1 / 3.0).abs() < 1e-15);
        assert_eq!(relative_l1(&[1.0], &[1.0, 2.0]), f64::INFINITY);
        assert_eq!(relative_l1(&[f64::NAN], &[1.0]), f64::INFINITY);
    }
}
