//! # raptor-lab — the unified scenario layer and campaign engine
//!
//! The paper's headline result is not a single truncated run but a
//! *sweep*: many (scope, format, mode, AMR-cutoff) configurations
//! evaluated per workload, quality-of-result metrics deciding which
//! truncations are safe, and the §7.2 co-design model ranking the
//! survivors by predicted speedup. This crate turns that methodology
//! into two layers:
//!
//! * the [`Scenario`] trait + [`registry()`] — every workload crate
//!   (hydro, incomp, eos, raptor-ir) behind one `build → run(&Session) →
//!   fidelity` contract;
//! * the campaign engine ([`run_campaign`], [`precision_search`]) — the
//!   sweep itself, fanned out over the persistent sweep pool.
//!
//! ## Running campaigns
//!
//! An enumerative sweep — 12 default configurations (format ladder ×
//! static/M-1 cutoff), run in parallel, ranked by fidelity-gated
//! predicted speedup. Scenarios without a refinement hierarchy (like the
//! IR kernels here) keep only the 6 static configurations — their M-1
//! twins would be bit-identical duplicates and are dropped:
//!
//! ```
//! use raptor_lab::{find, run_campaign, CampaignSpec, LabParams};
//!
//! let scenario = find("ir/horner").expect("registered");
//! let spec = CampaignSpec::sweep(LabParams::mini());
//! assert_eq!(spec.candidates.len(), 12);
//! let report = run_campaign(scenario.as_ref(), &spec);
//!
//! assert_eq!(report.baseline_fidelity, 1.0);
//! assert_eq!(report.outcomes.len(), 6); // unrefined: cutoffs deduped
//! println!("{}", report.render_table());          // human table
//! let json = report.to_json().render();           // machine summary
//! assert!(raptor_core::Json::parse(&json).is_ok());
//! ```
//!
//! A greedy precision hunt — per M-l cutoff, bisect for the minimal
//! mantissa width whose fidelity clears the floor:
//!
//! ```no_run
//! use raptor_lab::{find, precision_search, LabParams, SearchSpec};
//!
//! let scenario = find("hydro/sedov").expect("registered");
//! let spec = SearchSpec::new(LabParams::demo(), 0.999);
//! for row in precision_search(scenario.as_ref(), &spec) {
//!     println!("M-{}: minimal mantissa {:?}", row.cutoff, row.minimal_m);
//! }
//! ```
//!
//! Campaign candidates are the unit of parallelism: each runs on a
//! worker of the process-wide sweep pool ([`amr::pool_run`]), and any
//! mesh sweep *inside* a candidate runs inline on that worker — so a
//! 12-candidate campaign keeps 12 CPUs busy without oversubscription.
//! Fidelity is scenario-defined ([`Scenario::fidelity`]); `1.0` means
//! bit-identical to the cached full-precision baseline, and the default
//! metric maps relative-L1 distance through `1 / (1 + e)`.
//!
//! ## Distributed campaigns
//!
//! [`run_campaign_distributed`] drains the candidate lattice across
//! [`minimpi`] ranks through the shared work-stealing
//! [`queue::TaskPool`] — every rank contributes stealer threads that
//! pull one candidate at a time from a rank-0 queue server, and the
//! full-precision baseline is a lazily-computed pool resource — with
//! per-candidate outcome rows returning to rank 0 over the typed
//! [`minimpi::Wire`] transport. The merged, deterministically-ordered
//! [`CampaignReport`] is content-identical to the single-rank sweep for
//! any rank count:
//!
//! ```
//! use raptor_lab::{find, run_campaign, run_campaign_distributed, CampaignSpec, LabParams};
//!
//! let scenario = find("ir/horner").expect("registered");
//! let spec = CampaignSpec::sweep(LabParams::mini());
//! let single = run_campaign(scenario.as_ref(), &spec);
//! let merged = run_campaign_distributed(scenario.as_ref(), &spec, 2);
//! assert_eq!(merged.to_json().render(), single.to_json().render());
//! ```
//!
//! Campaign **resume** layers on top: outcomes persist to an
//! [`OutcomeCache`] file keyed by `(scenario, params, candidate label)`,
//! so an interrupted or repeated sweep restarts warm and only recomputes
//! missing candidates ([`run_campaign_distributed_resumable`] /
//! [`run_campaign_resumed`]). The CLI flow through the example binaries:
//!
//! ```sh
//! # Shard the sweep over 4 ranks, persisting outcomes as they complete.
//! codesign_advisor hydro/sod --ranks 4 --resume sweep-cache
//! # Re-run after an interrupt: cached rows are served, the rest computed.
//! codesign_advisor hydro/sod --ranks 4 --resume sweep-cache
//! # Fan the greedy bisection rows out across ranks, caching probes too.
//! sedov_precision_hunt hydro/sedov --ranks 3 --resume sweep-cache
//! # GPU-native lattice: what would a GPU port tolerate (fp32/fp64 only)?
//! codesign_advisor hydro/sod --native
//! ```
//!
//! The cache path names a *directory* of per-scenario, per-shard JSONL
//! files that any number of concurrent processes append to under
//! advisory locks (a legacy single-file cache migrates in place on
//! first load — see the [`cache`] module docs).
//!
//! [`precision_search_distributed`] steals at **probe** granularity:
//! every greedy-bisection probe of every M-l cutoff row is one
//! work-stealing task, with the per-cutoff chain state held by the
//! rank-0 row owner — the most skewed work in the repo (probe counts
//! differ per cutoff) no longer pins whole rows to ranks. Probes are
//! cached too ([`precision_search_resumed`]): each is a deterministic
//! `(scenario, scale, cutoff, m)` point, so a warm re-hunt performs
//! zero scenario runs. [`native_candidates`] restricts the lattice to
//! the hardware formats a GPU port could execute (the §3.6 constraint).
//!
//! ## Studies: the whole registry in one table
//!
//! A *study* sweeps **every** scenario (or a `--scenarios` subset, see
//! [`study_scenarios`]) over one candidate lattice and merges the results
//! into a single cross-scenario codesign ranking — the paper's headline
//! Table-1-style artifact. [`run_study_distributed`] flattens the
//! `(scenario, candidate)` pair list and drains it through the same
//! [`queue::TaskPool`] (rank 0 serves pair indices from a shared queue
//! over the minimpi mailboxes; per-scenario baselines broadcast lazily
//! on first touch), so skewed per-pair costs never idle ranks. One
//! shared [`OutcomeCache`] directory covers the whole study, and every
//! resumed run appends its [`StudyStats`] to the `stats_history.jsonl`
//! inside it ([`study::append_stats_history`]). See the [`queue`]
//! module docs for the protocol; the result is byte-identical to the
//! serial [`run_study`] for any rank count:
//!
//! ```
//! use raptor_lab::{run_study_distributed, study_scenarios, CampaignSpec, LabParams};
//!
//! let scenarios = study_scenarios(Some("ir/horner,eos/cellular")).unwrap();
//! let spec = CampaignSpec::sweep(LabParams::mini());
//! let study = run_study_distributed(&scenarios, &spec, 2);
//! assert_eq!(study.scenarios.len(), 2);
//! assert_eq!(study.ranking.len(), 2);   // one codesign row per scenario
//! println!("{}", study.render_markdown());
//! ```

#![forbid(unsafe_code)]

#![warn(missing_docs)]

pub mod cache;
pub mod campaign;
pub mod distributed;
pub mod queue;
pub mod registry;
pub mod scenario;
pub mod study;

pub use cache::{OutcomeCache, ResumeStats};
pub use campaign::{
    campaigns_to_json, default_candidates, format_ladder, native_candidates, precision_search,
    precision_search_resumable, run_campaign, run_campaigns, search_to_json, shear_candidates,
    CampaignReport, CampaignSpec, CandidateOutcome, CandidateSpec, ScopeAxis, SearchRow,
    SearchSpec,
};
pub use distributed::{
    precision_search_distributed, precision_search_distributed_resumable,
    precision_search_distributed_stats, precision_search_resumed, run_campaign_distributed,
    run_campaign_distributed_resumable, run_campaign_distributed_stats, run_campaign_resumed,
};
pub use queue::{FixedTasks, PoolRun, PoolStats, Task, TaskCtx, TaskPool, TaskSource};
pub use registry::{find, registry, study_scenarios};
pub use scenario::{
    fidelity_from_error, relative_l1, LabParams, Observable, Runnable, Scenario,
};
pub use study::{
    append_stats_history, load_stats_history, render_stats_history, run_study,
    run_study_distributed, run_study_distributed_resumable, run_study_resumed,
    stats_history_path, StatsRecord, StudyReport, StudyRow, StudyStats,
};
