//! # raptor-lab — the unified scenario layer and campaign engine
//!
//! The paper's headline result is not a single truncated run but a
//! *sweep*: many (scope, format, mode, AMR-cutoff) configurations
//! evaluated per workload, quality-of-result metrics deciding which
//! truncations are safe, and the §7.2 co-design model ranking the
//! survivors by predicted speedup. This crate turns that methodology
//! into two layers:
//!
//! * the [`Scenario`] trait + [`registry`] — every workload crate
//!   (hydro, incomp, eos, raptor-ir) behind one `build → run(&Session) →
//!   fidelity` contract;
//! * the campaign engine ([`run_campaign`], [`precision_search`]) — the
//!   sweep itself, fanned out over the persistent sweep pool.
//!
//! ## Running campaigns
//!
//! An enumerative sweep — 12 default configurations (format ladder ×
//! static/M-1 cutoff), run in parallel, ranked by fidelity-gated
//! predicted speedup. Scenarios without a refinement hierarchy (like the
//! IR kernels here) keep only the 6 static configurations — their M-1
//! twins would be bit-identical duplicates and are dropped:
//!
//! ```
//! use raptor_lab::{find, run_campaign, CampaignSpec, LabParams};
//!
//! let scenario = find("ir/horner").expect("registered");
//! let spec = CampaignSpec::sweep(LabParams::mini());
//! assert_eq!(spec.candidates.len(), 12);
//! let report = run_campaign(scenario.as_ref(), &spec);
//!
//! assert_eq!(report.baseline_fidelity, 1.0);
//! assert_eq!(report.outcomes.len(), 6); // unrefined: cutoffs deduped
//! println!("{}", report.render_table());          // human table
//! let json = report.to_json().render();           // machine summary
//! assert!(raptor_core::Json::parse(&json).is_ok());
//! ```
//!
//! A greedy precision hunt — per M-l cutoff, bisect for the minimal
//! mantissa width whose fidelity clears the floor:
//!
//! ```no_run
//! use raptor_lab::{find, precision_search, LabParams, SearchSpec};
//!
//! let scenario = find("hydro/sedov").expect("registered");
//! let spec = SearchSpec::new(LabParams::demo(), 0.999);
//! for row in precision_search(scenario.as_ref(), &spec) {
//!     println!("M-{}: minimal mantissa {:?}", row.cutoff, row.minimal_m);
//! }
//! ```
//!
//! Campaign candidates are the unit of parallelism: each runs on a
//! worker of the process-wide sweep pool ([`amr::pool_run`]), and any
//! mesh sweep *inside* a candidate runs inline on that worker — so a
//! 12-candidate campaign keeps 12 CPUs busy without oversubscription.
//! Fidelity is scenario-defined ([`Scenario::fidelity`]); `1.0` means
//! bit-identical to the cached full-precision baseline, and the default
//! metric maps relative-L1 distance through `1 / (1 + e)`.

#![warn(missing_docs)]

pub mod campaign;
pub mod registry;
pub mod scenario;

pub use campaign::{
    campaigns_to_json, default_candidates, format_ladder, precision_search, run_campaign,
    run_campaigns, search_to_json, CampaignReport, CampaignSpec, CandidateOutcome, CandidateSpec,
    ScopeAxis, SearchRow, SearchSpec,
};
pub use registry::{find, registry};
pub use scenario::{
    fidelity_from_error, relative_l1, LabParams, Observable, Runnable, Scenario,
};
