//! The campaign resume cache: per-candidate outcomes persisted to disk,
//! keyed by `(scenario, params, candidate label)`, so an interrupted or
//! re-run sweep — distributed or not — restarts warm and only recomputes
//! missing candidates.
//!
//! Because the key's first component is the scenario name, **one cache
//! file serves a whole study**: a full-registry sweep
//! ([`crate::run_study_resumed`]) reads and writes the same file as the
//! single-scenario campaigns, scenarios never collide, and a warm resume
//! of a completed study performs zero runs.
//!
//! The file is one JSON document through the shared serializer, so it is
//! both human-inspectable and parseable by downstream tooling:
//!
//! ```json
//! {
//!   "version": 1,
//!   "baselines": [ {"key": "hydro/sod|scale0|threads1", "fidelity": 1} ],
//!   "entries":   [ {"key": "hydro/sod|scale0|threads1|e8m23 op regions",
//!                   "outcome": { ... candidate outcome row ... }} ]
//! }
//! ```
//!
//! The candidate [`CandidateSpec::label`] is the last key component —
//! which is why the label is injective over every spec field (see its
//! docs): two distinct configurations can never share a cache slot.
//! Acceptance (`accepted`) is *not* trusted from the cache: it is
//! recomputed against the live campaign's fidelity floor at merge time,
//! so resuming with a stricter floor re-gates cached rows instead of
//! replaying stale verdicts.

use crate::campaign::{CandidateOutcome, CandidateSpec};
use crate::scenario::LabParams;
use raptor_core::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// What a resumable campaign did: how many candidate rows came from the
/// cache and how many had to be (re)computed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResumeStats {
    /// Rows served from the cache without running the scenario.
    pub cached: usize,
    /// Rows computed in this invocation (and written back to the cache).
    pub computed: usize,
}

/// A mergeable, resumable outcome table persisted as one JSON file.
#[derive(Debug)]
pub struct OutcomeCache {
    path: PathBuf,
    entries: BTreeMap<String, CandidateOutcome>,
    baselines: BTreeMap<String, f64>,
}

fn campaign_key(scenario: &str, params: &LabParams) -> String {
    format!("{scenario}|scale{}|threads{}", params.scale, params.threads)
}

impl OutcomeCache {
    /// Open a cache at `path`; a missing file yields an empty cache that
    /// [`OutcomeCache::save`] will create. A present-but-corrupt file is
    /// an error (silently discarding completed work would be worse).
    pub fn load(path: impl Into<PathBuf>) -> Result<OutcomeCache, String> {
        let path = path.into();
        sweep_stale_temps(&path, STALE_TEMP_AGE);
        let mut cache =
            OutcomeCache { path, entries: BTreeMap::new(), baselines: BTreeMap::new() };
        if !cache.path.exists() {
            return Ok(cache);
        }
        let text = std::fs::read_to_string(&cache.path)
            .map_err(|e| format!("read {}: {e}", cache.path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", cache.path.display()))?;
        for entry in doc.arr_field("entries")? {
            let outcome = CandidateOutcome::from_json(entry.req("outcome")?)?;
            cache.entries.insert(entry.str_field("key")?.to_string(), outcome);
        }
        for b in doc.arr_field("baselines")? {
            cache.baselines.insert(b.str_field("key")?.to_string(), b.f64_field("fidelity")?);
        }
        Ok(cache)
    }

    /// Where this cache persists.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cached candidate rows (across all campaigns in the file).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no candidate rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached outcome of one candidate, if present.
    pub fn get(
        &self,
        scenario: &str,
        params: &LabParams,
        spec: &CandidateSpec,
    ) -> Option<&CandidateOutcome> {
        self.entries.get(&format!("{}|{}", campaign_key(scenario, params), spec.label()))
    }

    /// Record (or refresh) one candidate outcome.
    pub fn insert(&mut self, scenario: &str, params: &LabParams, outcome: &CandidateOutcome) {
        self.entries.insert(
            format!("{}|{}", campaign_key(scenario, params), outcome.spec.label()),
            outcome.clone(),
        );
    }

    /// The cached baseline self-fidelity of a campaign, if recorded.
    pub fn baseline(&self, scenario: &str, params: &LabParams) -> Option<f64> {
        self.baselines.get(&campaign_key(scenario, params)).copied()
    }

    /// Record a campaign's baseline self-fidelity, so a fully-warm resume
    /// does not need to re-run even the reference.
    pub fn set_baseline(&mut self, scenario: &str, params: &LabParams, fidelity: f64) {
        self.baselines.insert(campaign_key(scenario, params), fidelity);
    }

    /// Drop every other candidate row (keeping the first, third, ... in
    /// key order) — the resume drill used by CI: run, evict half, re-run,
    /// and assert only the evicted half recomputes.
    pub fn evict_half(&mut self) {
        let keys: Vec<String> = self.entries.keys().cloned().collect();
        for key in keys.iter().skip(1).step_by(2) {
            self.entries.remove(key);
        }
    }

    /// Serialize the whole table (sorted by key, so the file is diffable
    /// and deterministic).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("version", 1u32)
            .set(
                "baselines",
                Json::Arr(
                    self.baselines
                        .iter()
                        .map(|(k, f)| Json::obj().set("key", k.as_str()).set("fidelity", *f))
                        .collect(),
                ),
            )
            .set(
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|(k, o)| {
                            Json::obj().set("key", k.as_str()).set("outcome", o.to_json())
                        })
                        .collect(),
                ),
            )
    }

    /// Write the cache back to its file (atomically: temp file + rename,
    /// so an interrupt mid-save cannot corrupt completed work).
    ///
    /// The temp name is unique per process *and* per save (pid + a
    /// process-wide counter): ranks, threads, and concurrent CLIs that
    /// share one cache file each stage into their own sibling, so no
    /// saver can overwrite or rename away another's half-written temp —
    /// the last rename wins and every intermediate state of the target
    /// is a complete document.
    pub fn save(&self) -> Result<(), String> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SAVE_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = SAVE_SEQ.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .path
            .with_extension(format!("tmp.{}.{seq}", std::process::id()));
        std::fs::write(&tmp, self.to_json().render())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| {
            let _ = std::fs::remove_file(&tmp);
            format!("rename {} -> {}: {e}", tmp.display(), self.path.display())
        })
    }
}

/// A temp sibling older than this is considered orphaned by a crashed
/// saver. Saves hold their temp for milliseconds, so an hour leaves a
/// ~10^6× margin for a live in-flight temp — and unlike checking pid
/// liveness, file age stays meaningful across PID namespaces and shared
/// filesystems where a foreign saver's pid is unknowable.
const STALE_TEMP_AGE: std::time::Duration = std::time::Duration::from_secs(3600);

/// Best-effort removal of temp siblings left behind by crashed savers.
///
/// Per-save temp names (`<stem>.tmp.<pid>.<seq>`) make concurrent saves
/// safe, but a saver killed between write and rename orphans its temp
/// forever — the fixed name used to self-overwrite. Every
/// [`OutcomeCache::load`] sweeps matching siblings whose mtime is at
/// least `older_than` old; anything younger might be a live saver's
/// in-flight temp (local or remote) and is left alone.
fn sweep_stale_temps(path: &Path, older_than: std::time::Duration) {
    let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else { return };
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    let prefix = format!("{stem}.tmp.");
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix(&prefix) else { continue };
        let Some((pid, seq)) = rest.split_once('.') else { continue };
        if pid.parse::<u32>().is_err() || seq.parse::<u64>().is_err() {
            continue;
        }
        let stale = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
            .is_some_and(|age| age >= older_than);
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfloat::Format;
    use raptor_core::{Counters, Report};

    fn outcome(m: u32) -> CandidateOutcome {
        CandidateOutcome {
            spec: CandidateSpec::op(Format::new(11, m)),
            fidelity: 0.5 + m as f64 * 1e-3,
            accepted: true,
            predicted_speedup: 1.5,
            speedup_compute: 2.0,
            speedup_memory: 1.25,
            counters: Counters::default(),
            report: Report {
                config: format!("m={m}"),
                counters: Counters::default(),
                flags: Vec::new(),
                warnings: Vec::new(),
            },
            error: None,
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("raptor-cache-test-{}-{name}.json", std::process::id()));
        p
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let params = LabParams::mini();
        let mut cache = OutcomeCache::load(&path).unwrap();
        assert!(cache.is_empty());
        cache.insert("hydro/sod", &params, &outcome(8));
        cache.insert("hydro/sod", &params, &outcome(23));
        cache.set_baseline("hydro/sod", &params, 1.0);
        cache.save().unwrap();

        let back = OutcomeCache::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.baseline("hydro/sod", &params), Some(1.0));
        let spec = CandidateSpec::op(Format::new(11, 8));
        assert_eq!(back.get("hydro/sod", &params, &spec), Some(&outcome(8)));
        // Different params or scenario miss.
        assert!(back.get("hydro/sod", &LabParams::demo(), &spec).is_none());
        assert!(back.get("hydro/sedov", &params, &spec).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn evict_half_drops_every_other_entry() {
        let path = tmp_path("evict");
        let mut cache = OutcomeCache::load(&path).unwrap();
        let params = LabParams::mini();
        for m in [4u32, 8, 12, 16, 20] {
            cache.insert("s", &params, &outcome(m));
        }
        cache.evict_half();
        assert_eq!(cache.len(), 3, "5 entries -> keep 3");
        cache.evict_half();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_saves_never_corrupt_or_lose_the_file() {
        // Regression for the fixed-temp-name race: every saver used to
        // stage into `<path>.tmp`, so two writers could clobber each
        // other's temp mid-rename and lose rows (or fail the rename
        // outright). With per-process+per-save temp names, each save is
        // independently atomic: the final file is exactly one writer's
        // complete table, and no temp siblings survive.
        let path = tmp_path("concurrent");
        let _ = std::fs::remove_file(&path);
        let params = LabParams::mini();
        let writers = 8usize;
        std::thread::scope(|s| {
            for w in 0..writers {
                let path = &path;
                s.spawn(move || {
                    let mut cache =
                        OutcomeCache { path: path.clone(), entries: BTreeMap::new(), baselines: BTreeMap::new() };
                    // Each writer's table is distinguishable by size.
                    for m in 0..=w as u32 {
                        cache.insert("race", &params, &outcome(m + 2));
                    }
                    for _ in 0..10 {
                        cache.save().expect("concurrent save succeeds");
                    }
                });
            }
        });
        // The surviving file is some writer's complete table.
        let back = OutcomeCache::load(&path).unwrap();
        assert!(
            (1..=writers).contains(&back.len()),
            "file holds one complete table, got {} rows",
            back.len()
        );
        // No stray temp files next to the cache.
        let dir = path.parent().unwrap();
        let stem = path.file_name().unwrap().to_string_lossy().to_string();
        let leftovers: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().to_string())
            .filter(|n| n != &stem && n.starts_with(stem.trim_end_matches(".json")))
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_sweeps_old_temps_but_keeps_fresh_and_foreign_siblings() {
        let path = tmp_path("sweep");
        let _ = std::fs::remove_file(&path);
        let temp = path.with_extension("tmp.123.3");
        let odd = path.with_extension("tmp.notapid.1");
        std::fs::write(&temp, "{}").unwrap();
        std::fs::write(&odd, "{}").unwrap();
        // A freshly-written temp might belong to a live in-flight save:
        // the hour-threshold sweep `load` runs must leave it alone.
        let _ = OutcomeCache::load(&path).unwrap();
        assert!(temp.exists(), "fresh temp untouched by load");
        // At age >= 0 the same temp is sweepable; siblings that merely
        // share the prefix shape are never candidates.
        sweep_stale_temps(&path, std::time::Duration::ZERO);
        assert!(!temp.exists(), "aged-out temp swept");
        assert!(odd.exists(), "non-temp-shaped sibling untouched");
        let _ = std::fs::remove_file(&odd);
    }

    #[test]
    fn corrupt_cache_is_an_error_not_a_silent_reset() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, "{not json").unwrap();
        assert!(OutcomeCache::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
