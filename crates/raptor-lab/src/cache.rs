//! The campaign resume cache: per-candidate outcomes persisted to disk,
//! keyed by `(scenario, params, candidate label)`, so an interrupted or
//! re-run sweep — distributed or not — restarts warm and only recomputes
//! missing candidates.
//!
//! Because the key's first component is the scenario name, **one cache
//! file serves a whole study**: a full-registry sweep
//! ([`crate::run_study_resumed`]) reads and writes the same file as the
//! single-scenario campaigns, scenarios never collide, and a warm resume
//! of a completed study performs zero runs.
//!
//! The file is one JSON document through the shared serializer, so it is
//! both human-inspectable and parseable by downstream tooling:
//!
//! ```json
//! {
//!   "version": 1,
//!   "baselines": [ {"key": "hydro/sod|scale0|threads1", "fidelity": 1} ],
//!   "entries":   [ {"key": "hydro/sod|scale0|threads1|e8m23 op regions",
//!                   "outcome": { ... candidate outcome row ... }} ]
//! }
//! ```
//!
//! The candidate [`CandidateSpec::label`] is the last key component —
//! which is why the label is injective over every spec field (see its
//! docs): two distinct configurations can never share a cache slot.
//! Acceptance (`accepted`) is *not* trusted from the cache: it is
//! recomputed against the live campaign's fidelity floor at merge time,
//! so resuming with a stricter floor re-gates cached rows instead of
//! replaying stale verdicts.

use crate::campaign::{CandidateOutcome, CandidateSpec};
use crate::scenario::LabParams;
use raptor_core::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// What a resumable campaign did: how many candidate rows came from the
/// cache and how many had to be (re)computed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResumeStats {
    /// Rows served from the cache without running the scenario.
    pub cached: usize,
    /// Rows computed in this invocation (and written back to the cache).
    pub computed: usize,
}

/// A mergeable, resumable outcome table persisted as one JSON file.
#[derive(Debug)]
pub struct OutcomeCache {
    path: PathBuf,
    entries: BTreeMap<String, CandidateOutcome>,
    baselines: BTreeMap<String, f64>,
}

fn campaign_key(scenario: &str, params: &LabParams) -> String {
    format!("{scenario}|scale{}|threads{}", params.scale, params.threads)
}

impl OutcomeCache {
    /// Open a cache at `path`; a missing file yields an empty cache that
    /// [`OutcomeCache::save`] will create. A present-but-corrupt file is
    /// an error (silently discarding completed work would be worse).
    pub fn load(path: impl Into<PathBuf>) -> Result<OutcomeCache, String> {
        let path = path.into();
        let mut cache =
            OutcomeCache { path, entries: BTreeMap::new(), baselines: BTreeMap::new() };
        if !cache.path.exists() {
            return Ok(cache);
        }
        let text = std::fs::read_to_string(&cache.path)
            .map_err(|e| format!("read {}: {e}", cache.path.display()))?;
        let doc = Json::parse(&text).map_err(|e| format!("{}: {e}", cache.path.display()))?;
        for entry in doc.arr_field("entries")? {
            let outcome = CandidateOutcome::from_json(entry.req("outcome")?)?;
            cache.entries.insert(entry.str_field("key")?.to_string(), outcome);
        }
        for b in doc.arr_field("baselines")? {
            cache.baselines.insert(b.str_field("key")?.to_string(), b.f64_field("fidelity")?);
        }
        Ok(cache)
    }

    /// Where this cache persists.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cached candidate rows (across all campaigns in the file).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no candidate rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached outcome of one candidate, if present.
    pub fn get(
        &self,
        scenario: &str,
        params: &LabParams,
        spec: &CandidateSpec,
    ) -> Option<&CandidateOutcome> {
        self.entries.get(&format!("{}|{}", campaign_key(scenario, params), spec.label()))
    }

    /// Record (or refresh) one candidate outcome.
    pub fn insert(&mut self, scenario: &str, params: &LabParams, outcome: &CandidateOutcome) {
        self.entries.insert(
            format!("{}|{}", campaign_key(scenario, params), outcome.spec.label()),
            outcome.clone(),
        );
    }

    /// The cached baseline self-fidelity of a campaign, if recorded.
    pub fn baseline(&self, scenario: &str, params: &LabParams) -> Option<f64> {
        self.baselines.get(&campaign_key(scenario, params)).copied()
    }

    /// Record a campaign's baseline self-fidelity, so a fully-warm resume
    /// does not need to re-run even the reference.
    pub fn set_baseline(&mut self, scenario: &str, params: &LabParams, fidelity: f64) {
        self.baselines.insert(campaign_key(scenario, params), fidelity);
    }

    /// Drop every other candidate row (keeping the first, third, ... in
    /// key order) — the resume drill used by CI: run, evict half, re-run,
    /// and assert only the evicted half recomputes.
    pub fn evict_half(&mut self) {
        let keys: Vec<String> = self.entries.keys().cloned().collect();
        for key in keys.iter().skip(1).step_by(2) {
            self.entries.remove(key);
        }
    }

    /// Serialize the whole table (sorted by key, so the file is diffable
    /// and deterministic).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("version", 1u32)
            .set(
                "baselines",
                Json::Arr(
                    self.baselines
                        .iter()
                        .map(|(k, f)| Json::obj().set("key", k.as_str()).set("fidelity", *f))
                        .collect(),
                ),
            )
            .set(
                "entries",
                Json::Arr(
                    self.entries
                        .iter()
                        .map(|(k, o)| {
                            Json::obj().set("key", k.as_str()).set("outcome", o.to_json())
                        })
                        .collect(),
                ),
            )
    }

    /// Write the cache back to its file (atomically: temp file + rename,
    /// so an interrupt mid-save cannot corrupt completed work).
    pub fn save(&self) -> Result<(), String> {
        let tmp = self.path.with_extension("tmp");
        std::fs::write(&tmp, self.to_json().render())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &self.path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), self.path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bigfloat::Format;
    use raptor_core::{Counters, Report};

    fn outcome(m: u32) -> CandidateOutcome {
        CandidateOutcome {
            spec: CandidateSpec::op(Format::new(11, m)),
            fidelity: 0.5 + m as f64 * 1e-3,
            accepted: true,
            predicted_speedup: 1.5,
            speedup_compute: 2.0,
            speedup_memory: 1.25,
            counters: Counters::default(),
            report: Report {
                config: format!("m={m}"),
                counters: Counters::default(),
                flags: Vec::new(),
                warnings: Vec::new(),
            },
            error: None,
        }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("raptor-cache-test-{}-{name}.json", std::process::id()));
        p
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let path = tmp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        let params = LabParams::mini();
        let mut cache = OutcomeCache::load(&path).unwrap();
        assert!(cache.is_empty());
        cache.insert("hydro/sod", &params, &outcome(8));
        cache.insert("hydro/sod", &params, &outcome(23));
        cache.set_baseline("hydro/sod", &params, 1.0);
        cache.save().unwrap();

        let back = OutcomeCache::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.baseline("hydro/sod", &params), Some(1.0));
        let spec = CandidateSpec::op(Format::new(11, 8));
        assert_eq!(back.get("hydro/sod", &params, &spec), Some(&outcome(8)));
        // Different params or scenario miss.
        assert!(back.get("hydro/sod", &LabParams::demo(), &spec).is_none());
        assert!(back.get("hydro/sedov", &params, &spec).is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn evict_half_drops_every_other_entry() {
        let path = tmp_path("evict");
        let mut cache = OutcomeCache::load(&path).unwrap();
        let params = LabParams::mini();
        for m in [4u32, 8, 12, 16, 20] {
            cache.insert("s", &params, &outcome(m));
        }
        cache.evict_half();
        assert_eq!(cache.len(), 3, "5 entries -> keep 3");
        cache.evict_half();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn corrupt_cache_is_an_error_not_a_silent_reset() {
        let path = tmp_path("corrupt");
        std::fs::write(&path, "{not json").unwrap();
        assert!(OutcomeCache::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
