//! The reusable work-stealing rank pool: PR 4's study queue-server,
//! extracted so **every** distributed driver — studies, campaign sweeps,
//! and probe-granularity precision searches — schedules through one
//! [`TaskPool`] instead of a static block partition.
//!
//! ## Topology
//!
//! [`TaskPool::run`] launches `nranks` minimpi ranks. Rank 0 runs one
//! **server thread** owning a [`TaskSource`]; every rank (rank 0
//! included) contributes stealer threads that loop `request → grant →
//! run → done` until dismissed. The caller supplies the task semantics:
//! the source decides what is ready, the worker closure runs a granted
//! task, and results flow back to the source as opaque [`Json`] payloads.
//!
//! ## Protocol invariants (each load-bearing)
//!
//! * **One server-bound tag.** `request`, `done`, `resource_req`, and
//!   `resource_put` all travel on [`TAG_POOL`]. Mailboxes are FIFO per
//!   tag and a stealer sends `done` before its next `request`, so when
//!   the server has dismissed every stealer it has necessarily processed
//!   every outcome — shutdown needs no extra synchronization.
//! * **Private reply tags.** Replies go to `TAG_POOL_REPLY + slot`
//!   (slot = stealer index within its rank), so concurrent stealers of
//!   one rank never steal each other's grants.
//! * **Fair start, then elastic.** The server holds the first round of
//!   grants until every stealer has checked in (grant order sorted by
//!   `(rank, slot)`), guaranteeing each stealer ≥ 1 task whenever the
//!   queue is deep enough; after that, grants go to whoever asks.
//! * **Parking.** A [`TaskSource`] may be *dynamic* — a completed task
//!   can ready further tasks (the greedy-bisection probe chains of
//!   `precision_search_distributed`). A requester that finds the queue
//!   momentarily empty is parked, and un-parked in FIFO order the moment
//!   a completion readies new work; when the source reports itself
//!   [`TaskSource::exhausted`], all parked stealers are dismissed.
//! * **Lazy shared resources.** Expensive shared values (full-precision
//!   baseline observables) are computed **on first touch**: the first
//!   stealer to ask is told to compute and upload; peers that ask while
//!   the upload is in flight park and are answered the moment it lands.
//!   Resources cross the wire bit-exactly as [`minimpi::F64Bits`] hex
//!   words, and tasks served entirely from a cache never touch one.
//!
//! ## Stealer sizing
//!
//! The pool runs `max(workers, nranks)` stealers in total, spread as
//! evenly as possible across ranks (±1): every rank contributes at least
//! one stealer — a rank with none would idle for the whole run — and
//! when `workers >= nranks` the pool never oversubscribes the requested
//! worker budget. The effective count is surfaced in
//! [`PoolStats::stealers`] (and from there in `StudyStats`), so
//! deliberate oversubscription at `workers < nranks` is visible, not
//! silent.

use minimpi::{F64Bits, Json, Wire};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tag for every server-bound pool message. One tag on purpose: a rank's
/// mailbox is FIFO per tag, so a stealer's `done` is always processed
/// before the `request` it sends next — the server can shut down after
/// the last dismissal knowing every outcome has landed.
pub const TAG_POOL: u64 = 0x57DD;
/// Base of the per-stealer reply-tag range: stealer `slot` of a rank
/// listens on `TAG_POOL_REPLY + slot`, its private channel to rank 0.
pub const TAG_POOL_REPLY: u64 = 0x57DE_0000;

fn reply_tag(slot: u64) -> u64 {
    TAG_POOL_REPLY + slot
}

// ---------------------------------------------------------------------------
// Task sources
// ---------------------------------------------------------------------------

/// One grantable unit of work: an id the worker resolves against its own
/// captured context, plus a `detail` document shipped with the grant for
/// sources whose tasks carry parameters (e.g. a probe's mantissa width).
pub struct Task {
    /// Source-assigned task id, echoed back in the `done` message.
    pub id: u64,
    /// Task parameters shipped with the grant (`Json::Null` when the id
    /// alone identifies the work).
    pub detail: Json,
}

/// The server-side task generator a [`TaskPool`] drains.
///
/// Static sources (a fixed candidate list) expose every task up front;
/// dynamic sources (bisection probe chains) ready new tasks as completed
/// ones report back through [`TaskSource::complete`].
pub trait TaskSource {
    /// Pop the next ready task, if any. A `None` here does **not** mean
    /// the pool is done — in-flight tasks may ready more — only
    /// [`TaskSource::exhausted`] does.
    fn next(&mut self) -> Option<Task>;

    /// Accept a completed task's result payload; may ready further
    /// tasks. Errors abort the run (a payload that fails to parse means
    /// a protocol bug, not bad data).
    fn complete(&mut self, task: u64, payload: Json) -> Result<(), String>;

    /// `true` once no task will ever become ready again — every granted
    /// task may then be assumed accounted for and idle stealers are
    /// dismissed.
    fn exhausted(&self) -> bool;
}

/// The static source: `n` tasks with ids `0..n`, granted in order, one
/// payload slot each — the shape of campaign candidate lists and study
/// pair lattices.
pub struct FixedTasks {
    next: usize,
    payloads: Vec<Option<Json>>,
}

impl FixedTasks {
    /// A source of `n` index tasks.
    pub fn new(n: usize) -> FixedTasks {
        FixedTasks { next: 0, payloads: (0..n).map(|_| None).collect() }
    }

    /// The collected payloads, in task order. Every slot is `Some` after
    /// a completed [`TaskPool::run`].
    pub fn into_payloads(self) -> Vec<Option<Json>> {
        self.payloads
    }
}

impl TaskSource for FixedTasks {
    fn next(&mut self) -> Option<Task> {
        if self.next < self.payloads.len() {
            let id = self.next as u64;
            self.next += 1;
            Some(Task { id, detail: Json::Null })
        } else {
            None
        }
    }

    fn complete(&mut self, task: u64, payload: Json) -> Result<(), String> {
        let slot = self
            .payloads
            .get_mut(task as usize)
            .ok_or_else(|| format!("task id {task} out of range"))?;
        if slot.replace(payload).is_some() {
            return Err(format!("task {task} completed twice"));
        }
        Ok(())
    }

    fn exhausted(&self) -> bool {
        self.next == self.payloads.len()
    }
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

/// Stealer → server messages.
enum ToServer {
    /// "Give me a task" — `slot` picks the reply tag.
    Request { slot: u64 },
    /// "Task `task` is finished; here is its result payload."
    Done { task: u64, payload: Json },
    /// "Task `task` panicked; tear the run down." The reporting stealer
    /// keeps requesting (and is dismissed by the draining server), so
    /// every thread joins and the failure surfaces as one loud panic
    /// instead of a wedged process.
    Failed { task: u64, error: String },
    /// "I need shared resource `key`."
    ResourceReq { key: u64, slot: u64 },
    /// "Here is the resource I was told to compute."
    ResourcePut { key: u64, values: Vec<f64> },
}

/// Server → stealer replies, sent on the requesting stealer's reply tag.
enum FromServer {
    /// Run this task next.
    Grant { task: u64, detail: Json },
    /// No work will ever be ready again; shut down.
    NoMoreWork,
    /// The requested resource, bit-exact.
    Resource { values: Vec<f64> },
    /// First touch: the requester computes the resource and uploads it
    /// with [`ToServer::ResourcePut`].
    ComputeResource,
}

impl Wire for ToServer {
    fn to_wire(&self) -> Json {
        match self {
            ToServer::Request { slot } => Json::obj().set("type", "request").set("slot", *slot),
            ToServer::Done { task, payload } => Json::obj()
                .set("type", "done")
                .set("task", *task)
                .set("payload", payload.clone()),
            ToServer::Failed { task, error } => Json::obj()
                .set("type", "failed")
                .set("task", *task)
                .set("error", error.as_str()),
            ToServer::ResourceReq { key, slot } => Json::obj()
                .set("type", "resource_req")
                .set("key", *key)
                .set("slot", *slot),
            ToServer::ResourcePut { key, values } => Json::obj()
                .set("type", "resource_put")
                .set("key", *key)
                .set("values", F64Bits::encode(values)),
        }
    }

    fn from_wire(doc: &Json) -> Result<ToServer, String> {
        match doc.str_field("type")? {
            "request" => Ok(ToServer::Request { slot: doc.u64_field("slot")? }),
            "done" => Ok(ToServer::Done {
                task: doc.u64_field("task")?,
                payload: doc.req("payload")?.clone(),
            }),
            "failed" => Ok(ToServer::Failed {
                task: doc.u64_field("task")?,
                error: doc.str_field("error")?.to_string(),
            }),
            "resource_req" => Ok(ToServer::ResourceReq {
                key: doc.u64_field("key")?,
                slot: doc.u64_field("slot")?,
            }),
            "resource_put" => Ok(ToServer::ResourcePut {
                key: doc.u64_field("key")?,
                values: F64Bits::decode(doc.req("values")?)?,
            }),
            other => Err(format!("unknown pool message `{other}`")),
        }
    }
}

impl Wire for FromServer {
    fn to_wire(&self) -> Json {
        match self {
            FromServer::Grant { task, detail } => Json::obj()
                .set("type", "grant")
                .set("task", *task)
                .set("detail", detail.clone()),
            FromServer::NoMoreWork => Json::obj().set("type", "no_more_work"),
            FromServer::Resource { values } => {
                Json::obj().set("type", "resource").set("values", F64Bits::encode(values))
            }
            FromServer::ComputeResource => Json::obj().set("type", "compute_resource"),
        }
    }

    fn from_wire(doc: &Json) -> Result<FromServer, String> {
        match doc.str_field("type")? {
            "grant" => Ok(FromServer::Grant {
                task: doc.u64_field("task")?,
                detail: doc.req("detail")?.clone(),
            }),
            "no_more_work" => Ok(FromServer::NoMoreWork),
            "resource" => {
                Ok(FromServer::Resource { values: F64Bits::decode(doc.req("values")?)? })
            }
            "compute_resource" => Ok(FromServer::ComputeResource),
            other => Err(format!("unknown pool reply `{other}`")),
        }
    }
}

// ---------------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------------

/// A work-stealing pool of `max(workers, nranks)` stealer threads over
/// `nranks` minimpi ranks, rank 0 serving the queue.
pub struct TaskPool {
    nranks: usize,
    stealers: usize,
}

/// What one [`TaskPool::run`] measured: how the queue spread the tasks
/// and how long stealers spent waiting on it. Purely observational — the
/// task results themselves are deterministic regardless.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolStats {
    /// Tasks completed by each rank (length = rank count).
    pub tasks_by_rank: Vec<usize>,
    /// Effective stealer count across all ranks (`max(workers, nranks)`).
    pub stealers: usize,
    /// Total seconds stealers spent blocked on the queue (request→reply
    /// round trips, including time parked on an empty queue or a shared
    /// resource in flight), summed across stealers.
    pub queue_wait_s: f64,
}

/// Everything a drained [`TaskPool::run`] hands back.
pub struct PoolRun<S> {
    /// The task source, holding whatever results it accumulated.
    pub source: S,
    /// Lazily computed shared resources, by key; `None` where no task
    /// ever touched the key.
    pub resources: Vec<Option<Vec<f64>>>,
    /// Scheduling statistics.
    pub stats: PoolStats,
}

impl TaskPool {
    /// A pool over `nranks` ranks (clamped to ≥ 1) with a `workers`
    /// stealer budget. Total stealers = `max(workers, nranks)`: every
    /// rank contributes at least one (see the module docs for the rule).
    pub fn new(nranks: usize, workers: usize) -> TaskPool {
        let nranks = nranks.max(1);
        TaskPool { nranks, stealers: workers.max(nranks) }
    }

    /// Rank count.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Effective total stealer count.
    pub fn stealers(&self) -> usize {
        self.stealers
    }

    /// Stealers contributed by `rank`: the total spread as evenly as
    /// possible (±1), remainders to the low ranks.
    pub fn rank_stealers(&self, rank: usize) -> usize {
        self.stealers / self.nranks + usize::from(rank < self.stealers % self.nranks)
    }

    /// Drain `source` across the rank pool and return it with its
    /// accumulated results, the touched resources, and the stats.
    ///
    /// `worker(ctx, task, detail)` runs one granted task and returns its
    /// result payload; `resource(key)` computes a shared resource on
    /// first touch (both run on stealer threads — callers that sweep
    /// meshes inside a task wrap their bodies in `amr::run_inline`).
    pub fn run<S: TaskSource + Send>(
        &self,
        nresources: usize,
        source: S,
        worker: &(dyn Fn(&TaskCtx<'_>, u64, &Json) -> Json + Sync),
        resource: &(dyn Fn(u64) -> Vec<f64> + Sync),
    ) -> PoolRun<S> {
        let total = self.stealers;
        let wait_ns = AtomicU64::new(0);
        // The source is consumed by rank 0's server thread; the rank
        // closure runs once per rank, so it is handed over via a cell.
        let source_cell = Mutex::new(Some(source));
        let mut results = minimpi::run(self.nranks, |comm| -> Option<Served<S>> {
            // Every rank is up before the first grant can be answered;
            // with the fair-start preamble this guarantees each stealer
            // one task whenever the queue is deep enough.
            comm.barrier();
            let comm = &comm;
            let wait_ns = &wait_ns;
            std::thread::scope(|sc| {
                let server = (comm.rank() == 0).then(|| {
                    let source = source_cell
                        .lock()
                        .unwrap()
                        .take()
                        .expect("rank 0 takes the source exactly once");
                    sc.spawn(move || run_server(comm, source, total, nresources))
                });
                let mut stealers = Vec::with_capacity(self.rank_stealers(comm.rank()));
                for slot in 0..self.rank_stealers(comm.rank()) {
                    stealers.push(sc.spawn(move || {
                        run_stealer(comm, nresources, worker, resource, slot as u64, wait_ns)
                    }));
                }
                for s in stealers {
                    s.join().expect("stealer thread panicked");
                }
                server.map(|h| h.join().expect("task-pool server panicked"))
            })
        });
        let served = results[0].take().expect("rank 0 ran the queue server");
        PoolRun {
            source: served.source,
            resources: served.resources,
            stats: PoolStats {
                tasks_by_rank: served.tasks_by_rank,
                stealers: total,
                queue_wait_s: wait_ns.load(Ordering::Relaxed) as f64 / 1e9,
            },
        }
    }
}

/// What the rank-0 server hands back after the queue drains.
struct Served<S> {
    source: S,
    resources: Vec<Option<Vec<f64>>>,
    tasks_by_rank: Vec<usize>,
}

/// The rank-0 queue server: one thread, one shared inbound tag,
/// request/grant/done plus the parking and lazy-resource sub-protocols.
fn run_server<S: TaskSource>(
    comm: &minimpi::Comm,
    mut source: S,
    total_stealers: usize,
    nresources: usize,
) -> Served<S> {
    let mut resources: Vec<Option<Vec<f64>>> = (0..nresources).map(|_| None).collect();
    let mut computing = vec![false; nresources];
    let mut res_parked: Vec<Vec<(usize, u64)>> = (0..nresources).map(|_| Vec::new()).collect();
    let mut tasks_by_rank = vec![0usize; comm.size()];
    // Stealers waiting for work on a momentarily-empty dynamic queue,
    // un-parked FIFO as completions ready new tasks.
    let mut parked: VecDeque<(usize, u64)> = VecDeque::new();
    let mut dismissed = 0usize;

    // One grant decision, shared by the fair-start and elastic phases.
    macro_rules! serve {
        ($src:expr, $slot:expr) => {
            if let Some(t) = source.next() {
                comm.send_wire(
                    $src,
                    reply_tag($slot),
                    &FromServer::Grant { task: t.id, detail: t.detail },
                );
                tasks_by_rank[$src] += 1;
            } else if source.exhausted() {
                comm.send_wire($src, reply_tag($slot), &FromServer::NoMoreWork);
                dismissed += 1;
            } else {
                parked.push_back(($src, $slot));
            }
        };
    }

    // A fatal protocol error (unparseable message, a source rejecting a
    // payload) must not leave stealers blocked on replies that will
    // never come — that wedges the whole process with no message.
    // Instead: dismiss everyone (the resource sub-protocol stays
    // functional so mid-task stealers can finish and ask), then panic.
    macro_rules! abort {
        ($waiting:expr, $($msg:tt)*) => {{
            drain_and_dismiss(comm, $waiting, &mut resources,
                &mut res_parked, dismissed, total_stealers);
            panic!($($msg)*);
        }};
    }

    // Fair start: hold the first round of grants until every stealer has
    // checked in, then serve in (rank, slot) order. Work-stealing keeps
    // skewed costs from idling ranks *later*; this keeps a fast starter
    // from draining a shallow queue before its peers even launch.
    let mut first_round: Vec<(usize, u64)> = Vec::with_capacity(total_stealers);
    while first_round.len() < total_stealers {
        match comm.recv_wire_any::<ToServer>(TAG_POOL) {
            Ok((src, ToServer::Request { slot })) => first_round.push((src, slot)),
            Ok(_) => unreachable!("no grants issued yet, so only requests can arrive"),
            Err(e) => abort!(&mut first_round.drain(..).collect(), "pool message failed to parse: {e}"),
        }
    }
    first_round.sort_unstable();
    for (src, slot) in first_round {
        serve!(src, slot);
    }

    // Elastic phase: serve until every stealer has been dismissed. The
    // shared TAG_POOL keeps each stealer's `done` ahead of its next
    // `request` in mailbox order, so dismissal implies all results in.
    while dismissed < total_stealers {
        match comm.recv_wire_any::<ToServer>(TAG_POOL) {
            Err(e) => abort!(&mut parked, "pool message failed to parse: {e}"),
            Ok((src, ToServer::Request { slot })) => serve!(src, slot),
            Ok((_, ToServer::Done { task, payload })) => {
                if let Err(e) = source.complete(task, payload) {
                    abort!(&mut parked, "task-pool source rejected a payload: {e}");
                }
                // A completion may have readied follow-up tasks: un-park
                // waiting stealers onto them, FIFO.
                while let Some(&(src, slot)) = parked.front() {
                    match source.next() {
                        Some(t) => {
                            parked.pop_front();
                            comm.send_wire(
                                src,
                                reply_tag(slot),
                                &FromServer::Grant { task: t.id, detail: t.detail },
                            );
                            tasks_by_rank[src] += 1;
                        }
                        None => break,
                    }
                }
                if source.exhausted() {
                    while let Some((src, slot)) = parked.pop_front() {
                        comm.send_wire(src, reply_tag(slot), &FromServer::NoMoreWork);
                        dismissed += 1;
                    }
                }
            }
            Ok((_, ToServer::Failed { task, error })) => {
                abort!(&mut parked, "task-pool task {task} panicked: {error}");
            }
            Ok((src, ToServer::ResourceReq { key, slot })) => {
                serve_resource(comm, &mut resources, &mut computing, &mut res_parked, key, src, slot)
            }
            Ok((_, ToServer::ResourcePut { key, values })) => {
                store_resource(comm, &mut resources, &mut res_parked, key, values)
            }
        }
    }
    debug_assert!(source.exhausted(), "dismissal implies an exhausted source");
    Served { source, resources, tasks_by_rank }
}

/// Answer one `ResourceReq`: reply with the stored values, tell the
/// first toucher to compute, or park the requester until the upload.
fn serve_resource(
    comm: &minimpi::Comm,
    resources: &mut [Option<Vec<f64>>],
    computing: &mut [bool],
    res_parked: &mut [Vec<(usize, u64)>],
    key: u64,
    src: usize,
    slot: u64,
) {
    let k = key as usize;
    match &resources[k] {
        Some(values) => {
            comm.send_wire(src, reply_tag(slot), &FromServer::Resource { values: values.clone() })
        }
        None if !computing[k] => {
            // First touch: the requester computes and uploads.
            computing[k] = true;
            comm.send_wire(src, reply_tag(slot), &FromServer::ComputeResource);
        }
        None => res_parked[k].push((src, slot)),
    }
}

/// Record one `ResourcePut` and answer every stealer parked on it.
fn store_resource(
    comm: &minimpi::Comm,
    resources: &mut [Option<Vec<f64>>],
    res_parked: &mut [Vec<(usize, u64)>],
    key: u64,
    values: Vec<f64>,
) {
    let k = key as usize;
    for (r, slot) in res_parked[k].drain(..) {
        comm.send_wire(r, reply_tag(slot), &FromServer::Resource { values: values.clone() });
    }
    resources[k] = Some(values);
}

/// The fatal-error teardown: dismiss `waiting` stealers immediately,
/// then answer the remaining traffic with dismissals until every stealer
/// has been let go — mid-task stealers still get their resources (they
/// must finish the task before they can ask again), completions and
/// unparseable messages are dropped. Keeps a protocol error loud (the
/// caller panics right after) instead of wedging blocked stealers.
///
/// Resource waiters can never be parked here: a parked waiter only wakes
/// on an upload, and during an abort the upload may be the very message
/// that failed to parse. Every resource request without a stored value
/// is answered `ComputeResource` instead — duplicated computes are
/// waste, but the run is aborting and every stealer must come back for
/// its dismissal.
fn drain_and_dismiss(
    comm: &minimpi::Comm,
    waiting: &mut VecDeque<(usize, u64)>,
    resources: &mut [Option<Vec<f64>>],
    res_parked: &mut [Vec<(usize, u64)>],
    mut dismissed: usize,
    total_stealers: usize,
) {
    while let Some((src, slot)) = waiting.pop_front() {
        comm.send_wire(src, reply_tag(slot), &FromServer::NoMoreWork);
        dismissed += 1;
    }
    for parked in res_parked.iter_mut() {
        for (src, slot) in parked.drain(..) {
            comm.send_wire(src, reply_tag(slot), &FromServer::ComputeResource);
        }
    }
    while dismissed < total_stealers {
        match comm.recv_wire_any::<ToServer>(TAG_POOL) {
            Ok((src, ToServer::Request { slot })) => {
                comm.send_wire(src, reply_tag(slot), &FromServer::NoMoreWork);
                dismissed += 1;
            }
            Ok((src, ToServer::ResourceReq { key, slot })) => match &resources[key as usize] {
                Some(values) => comm.send_wire(
                    src,
                    reply_tag(slot),
                    &FromServer::Resource { values: values.clone() },
                ),
                None => comm.send_wire(src, reply_tag(slot), &FromServer::ComputeResource),
            },
            Ok((_, ToServer::ResourcePut { key, values })) => {
                resources[key as usize] = Some(values);
            }
            Ok((_, ToServer::Done { .. } | ToServer::Failed { .. })) | Err(_) => {}
        }
    }
}

/// What a worker closure sees while running one task: its rank's
/// communicator context plus cached access to the pool's lazily-computed
/// shared resources.
pub struct TaskCtx<'a> {
    comm: &'a minimpi::Comm,
    slot: u64,
    known: RefCell<Vec<Option<Arc<Vec<f64>>>>>,
    /// Caller-side per-resource memo slots (see [`TaskCtx::memo`]).
    scratch: RefCell<Vec<Option<Box<dyn std::any::Any>>>>,
    compute: &'a (dyn Fn(u64) -> Vec<f64> + Sync),
    wait_ns: &'a AtomicU64,
}

impl TaskCtx<'_> {
    /// Fetch shared resource `key`, computing it via the pool's resource
    /// closure if this stealer is the first in the whole pool to touch
    /// it. Cached per stealer thread after the first fetch, so the
    /// protocol stays free of cross-thread locking.
    pub fn resource(&self, key: u64) -> Arc<Vec<f64>> {
        let k = key as usize;
        if let Some(v) = &self.known.borrow()[k] {
            return v.clone();
        }
        let t0 = Instant::now();
        let reply: FromServer = self
            .comm
            .request_wire(0, TAG_POOL, reply_tag(self.slot), &ToServer::ResourceReq {
                key,
                slot: self.slot,
            })
            .expect("pool reply parses");
        self.wait_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let values = match reply {
            FromServer::Resource { values } => values,
            FromServer::ComputeResource => {
                let values = (self.compute)(key);
                self.comm.send_wire(0, TAG_POOL, &ToServer::ResourcePut {
                    key,
                    values: values.clone(),
                });
                values
            }
            _ => unreachable!("resource requests are answered with values or compute"),
        };
        let arc = Arc::new(values);
        self.known.borrow_mut()[k] = Some(arc.clone());
        arc
    }

    /// Run `use_it` against a caller-defined value derived from resource
    /// `key`, built by `init` at most once per stealer (e.g. an
    /// `Observable` materialized from the raw resource vector — tasks
    /// are whole scenario runs, so re-deriving per task is waste). The
    /// memo lives inside this `TaskCtx` and dies with its stealer
    /// thread at the end of the pool run, so entries can never leak into
    /// another run where the same key means something else.
    ///
    /// The memoized type must be stable per key across the run (it is
    /// downcast on reuse). No cell borrow is held while `use_it` runs,
    /// so nesting `memo` calls for other keys inside it is fine; `init`
    /// must not recurse into `memo` for its *own* key.
    pub fn memo<T: 'static, R>(
        &self,
        key: u64,
        init: impl FnOnce(&TaskCtx<'_>) -> T,
        use_it: impl FnOnce(&T) -> R,
    ) -> R {
        use std::rc::Rc;
        let k = key as usize;
        let cached: Option<Rc<T>> = self.scratch.borrow()[k]
            .as_ref()
            .map(|v| v.downcast_ref::<Rc<T>>().expect("memo type is stable per key").clone());
        let value = match cached {
            Some(v) => v,
            None => {
                let v = Rc::new(init(self));
                self.scratch.borrow_mut()[k] = Some(Box::new(v.clone()));
                v
            }
        };
        use_it(&value)
    }
}

/// One stealer thread: request → run the granted task → done → request,
/// until dismissed.
fn run_stealer(
    comm: &minimpi::Comm,
    nresources: usize,
    worker: &(dyn Fn(&TaskCtx<'_>, u64, &Json) -> Json + Sync),
    resource: &(dyn Fn(u64) -> Vec<f64> + Sync),
    slot: u64,
    wait_ns: &AtomicU64,
) {
    let ctx = TaskCtx {
        comm,
        slot,
        known: RefCell::new((0..nresources).map(|_| None).collect()),
        scratch: RefCell::new((0..nresources).map(|_| None).collect()),
        compute: resource,
        wait_ns,
    };
    loop {
        let t0 = Instant::now();
        let reply: FromServer = comm
            .request_wire(0, TAG_POOL, reply_tag(slot), &ToServer::Request { slot })
            .expect("pool reply parses");
        wait_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match reply {
            FromServer::Grant { task, detail } => {
                // A panicking task body must not kill this thread: a
                // dead stealer can never be dismissed, which would wedge
                // the server (and the whole process) in a silent hang.
                // Capture the panic, report it, and keep requesting —
                // the draining server dismisses everyone and re-raises
                // the failure as its own loud panic.
                let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    worker(&ctx, task, &detail)
                }));
                match payload {
                    Ok(payload) => {
                        comm.send_wire(0, TAG_POOL, &ToServer::Done { task, payload })
                    }
                    Err(panic) => comm.send_wire(0, TAG_POOL, &ToServer::Failed {
                        task,
                        error: panic_message(&panic),
                    }),
                }
            }
            FromServer::NoMoreWork => return,
            _ => unreachable!("work requests are answered with grant or dismissal"),
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn protocol_messages_round_trip() {
        let msgs = [
            ToServer::Request { slot: 3 },
            ToServer::Done { task: 9, payload: Json::obj().set("fidelity", 0.5) },
            ToServer::ResourceReq { key: 7, slot: 0 },
            ToServer::ResourcePut {
                key: 2,
                values: vec![1.5, -0.0, f64::INFINITY, f64::NAN, 5e-324],
            },
        ];
        for m in &msgs {
            let back = ToServer::from_wire_bytes(&m.to_wire_bytes()).unwrap();
            match (m, &back) {
                (ToServer::Request { slot: a }, ToServer::Request { slot: b }) => {
                    assert_eq!(a, b)
                }
                (
                    ToServer::Done { task: t1, payload: p1 },
                    ToServer::Done { task: t2, payload: p2 },
                ) => assert_eq!((t1, p1), (t2, p2)),
                (
                    ToServer::ResourceReq { key: k1, slot: a },
                    ToServer::ResourceReq { key: k2, slot: b },
                ) => assert_eq!((k1, a), (k2, b)),
                (
                    ToServer::ResourcePut { key: k1, values: v1 },
                    ToServer::ResourcePut { key: k2, values: v2 },
                ) => {
                    assert_eq!(k1, k2);
                    assert_eq!(v1.len(), v2.len());
                    for (a, b) in v1.iter().zip(v2) {
                        assert_eq!(a.to_bits(), b.to_bits(), "lossless incl. non-finite");
                    }
                }
                _ => panic!("message kind changed in round trip"),
            }
        }
        let replies = [
            FromServer::Grant { task: 11, detail: Json::obj().set("m", 26u32) },
            FromServer::NoMoreWork,
            FromServer::Resource { values: vec![2.0, -1.0] },
            FromServer::ComputeResource,
        ];
        for r in &replies {
            let back = FromServer::from_wire_bytes(&r.to_wire_bytes()).unwrap();
            assert_eq!(
                std::mem::discriminant(r),
                std::mem::discriminant(&back),
                "reply kind survives"
            );
        }
    }

    #[test]
    fn stealer_sizing_clamps_and_balances() {
        // workers >= nranks: the budget is honored exactly.
        let p = TaskPool::new(2, 5);
        assert_eq!(p.stealers(), 5);
        assert_eq!((p.rank_stealers(0), p.rank_stealers(1)), (3, 2));
        // workers < nranks: deliberately oversubscribe to one per rank.
        let p = TaskPool::new(4, 2);
        assert_eq!(p.stealers(), 4);
        assert_eq!((0..4).map(|r| p.rank_stealers(r)).sum::<usize>(), 4);
        assert!((0..4).all(|r| p.rank_stealers(r) == 1));
        // nranks clamps to 1.
        let p = TaskPool::new(0, 3);
        assert_eq!((p.nranks(), p.stealers()), (1, 3));
        // The split always sums to the total.
        for (nranks, workers) in [(1, 1), (3, 7), (5, 5), (6, 4), (2, 9)] {
            let p = TaskPool::new(nranks, workers);
            let sum: usize = (0..p.nranks()).map(|r| p.rank_stealers(r)).sum();
            assert_eq!(sum, p.stealers(), "nranks={nranks} workers={workers}");
        }
    }

    #[test]
    fn fixed_tasks_run_exactly_once_across_every_rank() {
        let pool = TaskPool::new(3, 6);
        let run = pool.run(
            0,
            FixedTasks::new(12),
            &|_ctx, task, detail| {
                assert_eq!(detail, &Json::Null);
                Json::from(task * 10)
            },
            &|_key| unreachable!("no resources declared"),
        );
        let payloads = run.source.into_payloads();
        assert_eq!(payloads.len(), 12);
        for (i, p) in payloads.iter().enumerate() {
            assert_eq!(p.as_ref().and_then(|p| p.as_u64()), Some(i as u64 * 10));
        }
        assert_eq!(run.stats.stealers, 6);
        assert_eq!(run.stats.tasks_by_rank.len(), 3);
        assert_eq!(run.stats.tasks_by_rank.iter().sum::<usize>(), 12);
        // Fair start on a deep-enough queue: every rank completes >= 1.
        assert!(run.stats.tasks_by_rank.iter().all(|&n| n >= 1), "{:?}", run.stats.tasks_by_rank);
        assert!(run.stats.queue_wait_s >= 0.0);
    }

    #[test]
    fn empty_and_single_task_edge_cases() {
        // Empty queue: every stealer is dismissed at the fair start.
        let run = TaskPool::new(2, 4).run(
            1,
            FixedTasks::new(0),
            &|_, _, _| unreachable!("no tasks to grant"),
            &|_| unreachable!("no task ever touches a resource"),
        );
        assert!(run.source.into_payloads().is_empty());
        assert_eq!(run.stats.tasks_by_rank, vec![0, 0]);
        assert_eq!(run.resources, vec![None], "untouched resource stays None");

        // Single task on many stealers: exactly one rank runs it.
        let run = TaskPool::new(3, 6).run(
            0,
            FixedTasks::new(1),
            &|_, task, _| Json::from(task + 100),
            &|_| unreachable!(),
        );
        assert_eq!(run.source.into_payloads()[0].as_ref().and_then(|p| p.as_u64()), Some(100));
        assert_eq!(run.stats.tasks_by_rank.iter().sum::<usize>(), 1);
    }

    #[test]
    fn resources_compute_once_and_travel_bit_exactly() {
        // 2 resources, 8 tasks touching them alternately from 2 ranks:
        // each resource must be computed exactly once pool-wide, and its
        // non-finite bit patterns must reach every consumer unchanged.
        let computes = AtomicUsize::new(0);
        let payload = |key: u64| {
            vec![key as f64, f64::from_bits(0x7ff8_dead_beef_0000 + key), -0.0]
        };
        let run = TaskPool::new(2, 4).run(
            2,
            FixedTasks::new(8),
            &|ctx, task, _| {
                let key = task % 2;
                let values = ctx.resource(key);
                let want = payload(key);
                let ok = values.len() == want.len()
                    && values.iter().zip(&want).all(|(a, b)| a.to_bits() == b.to_bits());
                Json::from(ok)
            },
            &|key| {
                computes.fetch_add(1, Ordering::Relaxed);
                payload(key)
            },
        );
        assert_eq!(computes.load(Ordering::Relaxed), 2, "one compute per resource");
        for (i, p) in run.source.into_payloads().iter().enumerate() {
            assert_eq!(p.as_ref().and_then(|p| p.as_bool()), Some(true), "task {i}");
        }
        for (key, r) in run.resources.iter().enumerate() {
            let values = r.as_ref().expect("touched resource recorded");
            for (a, b) in values.iter().zip(&payload(key as u64)) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn ctx_memo_builds_once_per_stealer_and_key() {
        // memo derives a value from a resource at most once per
        // (stealer, key) — per-task re-derivation is the waste it
        // exists to remove — and every consumer sees the same value.
        let inits = AtomicUsize::new(0);
        let run = TaskPool::new(2, 2).run(
            2,
            FixedTasks::new(12),
            &|ctx, task, _| {
                let key = task % 2;
                let ok = ctx.memo(
                    key,
                    |ctx| {
                        inits.fetch_add(1, Ordering::Relaxed);
                        ctx.resource(key).iter().map(|v| v * 2.0).collect::<Vec<f64>>()
                    },
                    |doubled| doubled == &vec![key as f64 * 2.0],
                );
                Json::from(ok)
            },
            &|key| vec![key as f64],
        );
        for p in run.source.into_payloads() {
            assert_eq!(p.and_then(|p| p.as_bool()), Some(true));
        }
        let n = inits.load(Ordering::Relaxed);
        assert!(
            (2..=4).contains(&n),
            "between once-per-key and once-per-(stealer, key): {n}"
        );
    }

    /// A dynamic chain source: `chains[i]` tasks that must run strictly
    /// one after another per chain (each readies the next), the shape of
    /// a greedy-bisection probe chain.
    struct Chains {
        remaining: Vec<usize>,
        ready: VecDeque<usize>,
        inflight: std::collections::HashMap<u64, usize>,
        next_id: u64,
        completed: usize,
    }

    impl Chains {
        fn new(lengths: &[usize]) -> Chains {
            Chains {
                remaining: lengths.to_vec(),
                ready: (0..lengths.len()).filter(|&c| lengths[c] > 0).collect(),
                inflight: std::collections::HashMap::new(),
                next_id: 0,
                completed: 0,
            }
        }
    }

    impl TaskSource for Chains {
        fn next(&mut self) -> Option<Task> {
            let chain = self.ready.pop_front()?;
            let id = self.next_id;
            self.next_id += 1;
            self.inflight.insert(id, chain);
            Some(Task { id, detail: Json::from(chain) })
        }

        fn complete(&mut self, task: u64, _payload: Json) -> Result<(), String> {
            let chain = self.inflight.remove(&task).ok_or("unknown task")?;
            self.completed += 1;
            self.remaining[chain] -= 1;
            if self.remaining[chain] > 0 {
                self.ready.push_back(chain);
            }
            Ok(())
        }

        fn exhausted(&self) -> bool {
            self.remaining.iter().all(|&n| n == 0)
        }
    }

    /// A source whose `complete` always errors — the "payload shape
    /// drifted" protocol-bug case.
    struct RejectingSource(FixedTasks);

    impl TaskSource for RejectingSource {
        fn next(&mut self) -> Option<Task> {
            self.0.next()
        }

        fn complete(&mut self, _task: u64, _payload: Json) -> Result<(), String> {
            Err("payload shape drifted".to_string())
        }

        fn exhausted(&self) -> bool {
            self.0.exhausted()
        }
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn source_rejecting_a_payload_aborts_loudly_instead_of_hanging() {
        // The first completion makes the source error; the server must
        // dismiss every stealer (so all rank threads join) and then
        // panic — wedging blocked stealers would hang the test forever
        // rather than fail it.
        TaskPool::new(2, 4).run(
            0,
            RejectingSource(FixedTasks::new(8)),
            &|_, _, _| Json::Null,
            &|_| unreachable!(),
        );
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn worker_panic_aborts_loudly_instead_of_hanging() {
        // A panicking task body must tear the pool down with a panic,
        // not wedge the server waiting on a dismissal that can never
        // come from a dead stealer thread.
        TaskPool::new(2, 3).run(
            0,
            FixedTasks::new(6),
            &|_, task, _| {
                if task == 2 {
                    panic!("numerical blow-up in task {task}");
                }
                Json::Null
            },
            &|_| unreachable!(),
        );
    }

    #[test]
    fn dynamic_sources_park_and_drain_without_deadlock() {
        // More stealers than ever-ready tasks (chains expose one task at
        // a time), so stealers park and must be woken by completions —
        // and dismissed cleanly when the last chain dries up.
        let lengths = [5usize, 1, 3];
        let run = TaskPool::new(3, 3).run(
            0,
            Chains::new(&lengths),
            &|_, _, _| Json::Null,
            &|_| unreachable!(),
        );
        assert!(run.source.exhausted());
        assert_eq!(run.source.completed, lengths.iter().sum::<usize>());
        assert_eq!(
            run.stats.tasks_by_rank.iter().sum::<usize>(),
            lengths.iter().sum::<usize>()
        );
        // The sequential tail (the length-5 chain) rotates through parked
        // stealers, so no rank is shut out.
        assert!(run.stats.tasks_by_rank.iter().all(|&n| n >= 1), "{:?}", run.stats.tasks_by_rank);
    }
}
