//! Full-registry studies: every scenario swept over one candidate
//! lattice, fidelity-gated, and ranked into a single cross-scenario
//! codesign table — the paper's headline artifact (Table 1's shape) as
//! one API call.
//!
//! A *study* flattens the two-level loop the campaign engine left
//! implicit: instead of sweeping one scenario's candidates,
//! [`run_study_distributed`] enumerates every `(scenario, candidate)`
//! **pair** across the whole registry (or a subset, see
//! [`crate::study_scenarios`]) and drains the flattened pair list
//! through the shared work-stealing [`TaskPool`] (see the
//! [`crate::queue`] module docs for the protocol):
//!
//! * each pair is one task; skewed per-pair costs (a Kelvin–Helmholtz
//!   hydro run next to a 16-call IR kernel) never leave ranks idle;
//! * per-scenario full-precision baselines are pool *resources*,
//!   computed lazily on first touch and broadcast bit-exactly; scenarios
//!   whose pairs are all cache hits never run one;
//! * one shared [`OutcomeCache`] file covers the whole study (the cache
//!   key already carries the scenario name), so a warm resume of a
//!   completed study performs **zero** runs.
//!
//! The merged [`StudyReport`] carries one ranked [`CampaignReport`]
//! section per scenario plus a cross-scenario codesign ranking, and its
//! JSON rendering is **byte-identical for any rank count**: pairs are
//! reassembled in lattice order before the deterministic re-gate + stable
//! ranking sort, so where a pair ran never shows in the result. Where it
//! ran *is* recorded — [`StudyStats`] — and persisted across runs:
//! [`append_stats_history`] appends one JSON line per run to the
//! `stats_history.jsonl` next to the cache, so scheduler changes stay
//! measurable against the recorded baseline
//! (`codesign_advisor --stats-history` renders the trend).
//!
//! ```
//! use raptor_lab::{run_study, run_study_distributed, study_scenarios, CampaignSpec, LabParams};
//!
//! let scenarios = study_scenarios(Some("ir/horner,ir/norm3")).unwrap();
//! let spec = CampaignSpec::sweep(LabParams::mini());
//! let single = run_study(&scenarios, &spec);
//! let stolen = run_study_distributed(&scenarios, &spec, 2);
//! assert_eq!(stolen.to_json().render(), single.to_json().render());
//! println!("{}", stolen.render_markdown()); // the Table-1-style summary
//! ```

use crate::cache::OutcomeCache;
use crate::campaign::{
    eligible_candidates, regate_and_rank, run_campaign, run_candidate, CampaignReport,
    CampaignSpec, CandidateOutcome, CandidateSpec,
};
use crate::queue::{FixedTasks, TaskPool};
use crate::scenario::{LabParams, Observable, Scenario};
use minimpi::Json;
use raptor_core::Session;
use std::path::{Path, PathBuf};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// One row of the cross-scenario codesign ranking: what the study
/// recommends for one workload (Table 1's shape — workload, the chosen
/// truncation, its fidelity, and the predicted payoff).
#[derive(Clone, Debug, PartialEq)]
pub struct StudyRow {
    /// Scenario name.
    pub scenario: String,
    /// Scenario crate.
    pub crate_name: String,
    /// Label of the best accepted candidate (`None`: nothing cleared the
    /// fidelity floor — stay at FP64).
    pub recommended: Option<String>,
    /// Fidelity of the recommended candidate (of the least-bad rejected
    /// one when nothing was accepted).
    pub fidelity: f64,
    /// Predicted speedup of the recommendation (`1.0` when staying at
    /// FP64).
    pub predicted_speedup: f64,
    /// Truncated-op fraction of the reported candidate.
    pub truncated_fraction: f64,
    /// Candidates that cleared the fidelity floor.
    pub accepted: usize,
    /// Candidates swept.
    pub total: usize,
}

impl StudyRow {
    fn from_report(report: &CampaignReport) -> StudyRow {
        let accepted =
            report.outcomes.iter().filter(|o| o.accepted && o.error.is_none()).count();
        let shown = report
            .best()
            .or_else(|| report.outcomes.iter().find(|o| o.error.is_none()));
        StudyRow {
            scenario: report.scenario.clone(),
            crate_name: report.crate_name.clone(),
            recommended: report.best().map(|b| b.spec.label()),
            fidelity: shown.map(|o| o.fidelity).unwrap_or(1.0),
            predicted_speedup: report.best().map(|b| b.predicted_speedup).unwrap_or(1.0),
            truncated_fraction: shown.map(|o| o.counters.truncated_fraction()).unwrap_or(0.0),
            accepted,
            total: report.outcomes.len(),
        }
    }

    /// Machine-readable ranking row.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("scenario", self.scenario.as_str())
            .set("crate", self.crate_name.as_str())
            .set(
                "recommended",
                match &self.recommended {
                    Some(label) => Json::from(label.as_str()),
                    None => Json::Null,
                },
            )
            .set("fidelity", Json::from_f64_lossless(self.fidelity))
            .set("predicted_speedup", Json::from_f64_lossless(self.predicted_speedup))
            .set("truncated_fraction", Json::from_f64_lossless(self.truncated_fraction))
            .set("accepted", self.accepted as u64)
            .set("total", self.total as u64)
    }

    /// Parse back a document produced by [`StudyRow::to_json`].
    pub fn from_json(doc: &Json) -> Result<StudyRow, String> {
        Ok(StudyRow {
            scenario: doc.str_field("scenario")?.to_string(),
            crate_name: doc.str_field("crate")?.to_string(),
            recommended: match doc.req("recommended")? {
                Json::Null => None,
                label => Some(
                    label
                        .as_str()
                        .ok_or_else(|| "recommended is not a string".to_string())?
                        .to_string(),
                ),
            },
            fidelity: doc.f64_field_lossless("fidelity")?,
            predicted_speedup: doc.f64_field_lossless("predicted_speedup")?,
            truncated_fraction: doc.f64_field_lossless("truncated_fraction")?,
            accepted: doc.u64_field("accepted")? as usize,
            total: doc.u64_field("total")? as usize,
        })
    }
}

/// A completed study: one ranked campaign section per scenario plus the
/// cross-scenario codesign ranking.
#[derive(Clone, Debug, PartialEq)]
pub struct StudyReport {
    /// Scale the study ran at.
    pub params: LabParams,
    /// The acceptance floor used by every campaign.
    pub fidelity_floor: f64,
    /// Per-scenario campaign sections, in registry order.
    pub scenarios: Vec<CampaignReport>,
    /// Cross-scenario ranking: scenarios with an accepted candidate
    /// first, by predicted speedup; FP64 hold-outs last. Ties break on
    /// the scenario name so the order is total and deterministic.
    pub ranking: Vec<StudyRow>,
}

impl StudyReport {
    /// Build the study from its per-scenario reports (the single place
    /// the ranking is derived, shared by the serial and distributed
    /// drivers so both produce byte-identical output).
    fn assemble(spec: &CampaignSpec, scenarios: Vec<CampaignReport>) -> StudyReport {
        let mut ranking: Vec<StudyRow> = scenarios.iter().map(StudyRow::from_report).collect();
        ranking.sort_by(|a, b| {
            b.recommended
                .is_some()
                .cmp(&a.recommended.is_some())
                .then_with(|| {
                    b.predicted_speedup
                        .partial_cmp(&a.predicted_speedup)
                        .unwrap_or(core::cmp::Ordering::Equal)
                })
                .then_with(|| a.scenario.cmp(&b.scenario))
        });
        StudyReport {
            params: spec.params,
            fidelity_floor: spec.fidelity_floor,
            scenarios,
            ranking,
        }
    }

    /// The campaign section of one scenario, if it was part of the study.
    pub fn scenario(&self, name: &str) -> Option<&CampaignReport> {
        self.scenarios.iter().find(|r| r.scenario == name)
    }

    /// Machine-readable study summary through the shared serializer.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set(
                "params",
                Json::obj()
                    .set("scale", self.params.scale)
                    .set("threads", self.params.threads),
            )
            .set("fidelity_floor", self.fidelity_floor)
            .set(
                "scenarios",
                Json::Arr(self.scenarios.iter().map(|r| r.to_json()).collect()),
            )
            .set("ranking", Json::Arr(self.ranking.iter().map(|r| r.to_json()).collect()))
    }

    /// Parse back a document produced by [`StudyReport::to_json`].
    pub fn from_json(doc: &Json) -> Result<StudyReport, String> {
        let params = doc.req("params")?;
        Ok(StudyReport {
            params: LabParams {
                scale: params.u64_field("scale")? as u32,
                threads: params.u64_field("threads")? as usize,
            },
            fidelity_floor: doc.f64_field("fidelity_floor")?,
            scenarios: doc
                .arr_field("scenarios")?
                .iter()
                .map(CampaignReport::from_json)
                .collect::<Result<Vec<CampaignReport>, String>>()?,
            ranking: doc
                .arr_field("ranking")?
                .iter()
                .map(StudyRow::from_json)
                .collect::<Result<Vec<StudyRow>, String>>()?,
        })
    }

    /// The cross-scenario ranking as a markdown table (Table-1-style),
    /// the `codesign_advisor --study` rendering.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## Codesign study ({} scenarios, fidelity floor {})\n\n",
            self.scenarios.len(),
            self.fidelity_floor
        ));
        out.push_str("| scenario | crate | recommended | fidelity | speedup | trunc % | accepted |\n");
        out.push_str("|---|---|---|---|---|---|---|\n");
        for row in &self.ranking {
            out.push_str(&format!(
                "| {} | {} | {} | {:.6} | {:.2}x | {:.1}% | {}/{} |\n",
                row.scenario,
                row.crate_name,
                row.recommended.as_deref().unwrap_or("*stay at FP64*"),
                row.fidelity,
                row.predicted_speedup,
                100.0 * row.truncated_fraction,
                row.accepted,
                row.total
            ));
        }
        out
    }

    /// Human-readable study summary: the ranking table plus each
    /// scenario's campaign table.
    pub fn render_table(&self) -> String {
        let mut out = self.render_markdown();
        for report in &self.scenarios {
            out.push('\n');
            out.push_str(&report.render_table());
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Scheduler statistics + persistent history
// ---------------------------------------------------------------------------

/// What a scheduled run did, per rank: how the work-stealing queue
/// spread the work, how much of it the shared cache absorbed, and what
/// the scheduling cost. Kept out of [`StudyReport`] on purpose — the
/// report must be byte-identical across rank counts; the stats are where
/// the distribution shows. Shared by studies, distributed campaigns, and
/// probe-stealing precision searches (where `pairs_by_rank` counts
/// probes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StudyStats {
    /// Units served from the shared cache without running anything.
    pub cached: usize,
    /// Units computed in this invocation.
    pub computed: usize,
    /// Units completed by each rank (sums to `computed`). Length equals
    /// the rank count; a fully-warm resume has every entry zero.
    pub pairs_by_rank: Vec<usize>,
    /// Effective stealer count across all ranks: `max(workers, nranks)`
    /// (see [`crate::queue::TaskPool::new`] for the clamp rule). `0` when
    /// the run was fully warm and no pool was spun up.
    pub stealers: usize,
    /// Total seconds stealers spent blocked on the queue, summed across
    /// stealers.
    pub queue_wait_s: f64,
    /// Wall time of the whole run, seconds.
    pub wall_s: f64,
}

impl StudyStats {
    /// Fold a drained pool run's scheduling stats into this record — the
    /// single bridge from [`crate::queue::PoolStats`], so a new pool
    /// metric gets recorded by every driver (campaign, search, study) or
    /// none.
    pub fn absorb_pool(&mut self, pool: crate::queue::PoolStats) {
        self.pairs_by_rank = pool.tasks_by_rank;
        self.stealers = pool.stealers;
        self.queue_wait_s = pool.queue_wait_s;
    }

    /// Machine-readable stats through the shared serializer (the row
    /// body of the stats history).
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("cached", self.cached as u64)
            .set("computed", self.computed as u64)
            .set(
                "pairs_by_rank",
                Json::Arr(self.pairs_by_rank.iter().map(|&n| Json::from(n as u64)).collect()),
            )
            .set("stealers", self.stealers as u64)
            .set("queue_wait_s", Json::from_f64_lossless(self.queue_wait_s))
            .set("wall_s", Json::from_f64_lossless(self.wall_s))
    }

    /// Parse back a document produced by [`StudyStats::to_json`].
    pub fn from_json(doc: &Json) -> Result<StudyStats, String> {
        Ok(StudyStats {
            cached: doc.u64_field("cached")? as usize,
            computed: doc.u64_field("computed")? as usize,
            pairs_by_rank: doc
                .arr_field("pairs_by_rank")?
                .iter()
                .map(|n| {
                    n.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| "pairs_by_rank entry is not an integer".to_string())
                })
                .collect::<Result<Vec<usize>, String>>()?,
            stealers: doc.u64_field("stealers")? as usize,
            queue_wait_s: doc.f64_field_lossless("queue_wait_s")?,
            wall_s: doc.f64_field_lossless("wall_s")?,
        })
    }
}

/// One appended line of the stats history: which run produced the stats,
/// against which cache file, at how many ranks, when.
#[derive(Clone, Debug, PartialEq)]
pub struct StatsRecord {
    /// What ran: `campaign:<scenario>`, `study:<n> scenarios`, or
    /// `search:<scenario>`.
    pub label: String,
    /// File name of the cache the run resumed against. The history file
    /// is shared per directory (one `stats_history.jsonl` sibling), so
    /// this is what keeps rows of co-located caches distinguishable.
    /// Stamped by [`append_stats_history`].
    pub cache: String,
    /// minimpi rank count of the run.
    pub ranks: usize,
    /// Milliseconds since the Unix epoch at record time.
    pub unix_ms: u64,
    /// The run's scheduler statistics.
    pub stats: StudyStats,
}

impl StatsRecord {
    /// A record stamped with the current wall clock (the cache name is
    /// stamped later, by [`append_stats_history`]).
    pub fn now(label: impl Into<String>, ranks: usize, stats: &StudyStats) -> StatsRecord {
        let unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        StatsRecord {
            label: label.into(),
            cache: String::new(),
            ranks,
            unix_ms,
            stats: stats.clone(),
        }
    }

    /// One history line (flattened: the stats fields inline with the
    /// run metadata).
    pub fn to_json(&self) -> Json {
        let mut doc = Json::obj()
            .set("label", self.label.as_str())
            .set("cache", self.cache.as_str())
            .set("ranks", self.ranks as u64)
            .set("unix_ms", self.unix_ms as f64);
        if let Json::Obj(stats) = self.stats.to_json() {
            for (k, v) in stats {
                doc = doc.set(&k, v);
            }
        }
        doc
    }

    /// Parse back one history line.
    pub fn from_json(doc: &Json) -> Result<StatsRecord, String> {
        Ok(StatsRecord {
            label: doc.str_field("label")?.to_string(),
            cache: doc.str_field("cache")?.to_string(),
            ranks: doc.u64_field("ranks")? as usize,
            unix_ms: doc.f64_field("unix_ms")? as u64,
            stats: StudyStats::from_json(doc)?,
        })
    }
}

/// Where the stats history of the cache at `cache_path` lives: a
/// `stats_history.jsonl` — one compact JSON document per line,
/// append-only, so every resumed run (study, campaign, or hunt) adds
/// exactly one row and the file diffs like a log. For a sharded cache
/// directory the history lives *inside* it (top level, next to the
/// scenario shard dirs); for a legacy file path it is a sibling.
pub fn stats_history_path(cache_path: &Path) -> PathBuf {
    if cache_path.is_dir() {
        return cache_path.join("stats_history.jsonl");
    }
    cache_path.parent().unwrap_or_else(|| Path::new(".")).join("stats_history.jsonl")
}

/// Append one record to the stats history next to `cache_path` and
/// return the history path. Called by [`run_study_resumed`] and
/// [`crate::run_campaign_resumed`] after every run, so scheduler changes
/// are measurable against the recorded baseline.
pub fn append_stats_history(cache_path: &Path, record: &StatsRecord) -> Result<PathBuf, String> {
    use std::io::Write;
    let path = stats_history_path(cache_path);
    let mut record = record.clone();
    record.cache = cache_path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let mut line = record.to_json().render_compact();
    line.push('\n');
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("open {}: {e}", path.display()))?;
    file.write_all(line.as_bytes()).map_err(|e| format!("append {}: {e}", path.display()))?;
    Ok(path)
}

/// Load every record of a stats-history file, oldest first. Blank lines
/// are skipped; a malformed line is an error naming its line number
/// (silently dropping recorded measurements would defeat the log).
pub fn load_stats_history(path: &Path) -> Result<Vec<StatsRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            let doc = Json::parse(line).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))?;
            StatsRecord::from_json(&doc).map_err(|e| format!("{}:{}: {e}", path.display(), i + 1))
        })
        .collect()
}

/// The stats history as a trend table (the `codesign_advisor
/// --stats-history` rendering): one line per recorded run, oldest first,
/// with the per-rank balance spelled out.
pub fn render_stats_history(records: &[StatsRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## Scheduler stats history ({} runs)\n\n", records.len()));
    out.push_str(
        "| # | label | cache | ranks | stealers | cached | computed | by rank | queue wait s | wall s |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
    for (i, r) in records.iter().enumerate() {
        let by_rank = r
            .stats
            .pairs_by_rank
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<String>>()
            .join("/");
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {:.3} | {:.3} |\n",
            i + 1,
            r.label,
            r.cache,
            r.ranks,
            r.stats.stealers,
            r.stats.cached,
            r.stats.computed,
            by_rank,
            r.stats.queue_wait_s,
            r.stats.wall_s,
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Run the study serially in-process: one campaign per scenario (each
/// scenario's candidates still sweep in parallel on the process-wide
/// pool), then the cross-scenario ranking. The reference implementation
/// the distributed driver is tested against.
pub fn run_study(scenarios: &[Box<dyn Scenario>], spec: &CampaignSpec) -> StudyReport {
    let reports: Vec<CampaignReport> =
        scenarios.iter().map(|s| run_campaign(s.as_ref(), spec)).collect();
    StudyReport::assemble(spec, reports)
}

/// One entry of the flattened `(scenario, candidate)` pair lattice.
struct Pair {
    /// Index into the study's scenario list.
    scenario: usize,
    candidate: CandidateSpec,
}

/// Run the study sharded across `nranks` minimpi ranks with the shared
/// work-stealing [`TaskPool`]. The merged report is byte-identical
/// (JSON) to [`run_study`] for any rank count.
pub fn run_study_distributed(
    scenarios: &[Box<dyn Scenario>],
    spec: &CampaignSpec,
    nranks: usize,
) -> StudyReport {
    run_study_distributed_resumable(scenarios, spec, nranks, None).0
}

/// [`run_study_distributed`] with the shared study cache: pairs already
/// cached are served without running anything (a fully-warm resume of a
/// whole study performs zero runs, baselines included); only missing
/// pairs enter the work-stealing queue, and every row of the merged
/// report is written back.
pub fn run_study_distributed_resumable(
    scenarios: &[Box<dyn Scenario>],
    spec: &CampaignSpec,
    nranks: usize,
    mut cache: Option<&mut OutcomeCache>,
) -> (StudyReport, StudyStats) {
    let t0 = Instant::now();
    let nranks = nranks.max(1);
    let max_levels: Vec<u32> = scenarios.iter().map(|s| s.max_level(&spec.params)).collect();

    // The flattened pair lattice, in (scenario, candidate) order — the
    // deterministic spine every merge below reassembles along.
    let mut pairs: Vec<Pair> = Vec::new();
    for (si, _) in scenarios.iter().enumerate() {
        for c in eligible_candidates(spec, max_levels[si]) {
            pairs.push(Pair { scenario: si, candidate: c.clone() });
        }
    }
    let mut cached: Vec<Option<CandidateOutcome>> = pairs
        .iter()
        .map(|p| {
            cache.as_deref().and_then(|k| {
                k.get(scenarios[p.scenario].name(), &spec.params, &p.candidate).cloned()
            })
        })
        .collect();
    let missing: Vec<&Pair> =
        pairs.iter().zip(&cached).filter(|(_, hit)| hit.is_none()).map(|(p, _)| p).collect();

    let mut stats = StudyStats {
        cached: pairs.len() - missing.len(),
        computed: missing.len(),
        pairs_by_rank: vec![0; nranks],
        ..StudyStats::default()
    };

    // Baselines of scenarios some stealer actually touched (keyed by
    // scenario index); fully-cached scenarios stay `None` and fall back
    // to their cached baseline self-fidelity.
    let (computed, baselines): (Vec<Option<CandidateOutcome>>, Vec<Option<Observable>>) =
        if missing.is_empty() {
            (Vec::new(), vec![None; scenarios.len()])
        } else {
            let pool = TaskPool::new(nranks, spec.workers);
            let missing_ref = &missing;
            let run = pool.run(
                scenarios.len(),
                FixedTasks::new(missing.len()),
                // Stealers are plain threads, not pool workers: mark each
                // pair run as in-sweep so a scenario's interior mesh
                // sweeps (params.threads > 1) run inline instead of
                // serializing all stealers on the process-wide pool's
                // submit lock — the same one-level-of-parallelism rule
                // pool workers get implicitly.
                &|ctx, task, _detail| {
                    let Pair { scenario: si, candidate } = missing_ref[task as usize];
                    crate::distributed::with_baseline(ctx, *si as u64, |baseline| {
                        amr::run_inline(|| {
                            run_candidate(
                                scenarios[*si].as_ref(),
                                spec,
                                candidate,
                                max_levels[*si],
                                baseline,
                            )
                        })
                        .to_json()
                    })
                },
                &|key| {
                    amr::run_inline(|| {
                        scenarios[key as usize].build(&spec.params).run(&Session::passthrough())
                    })
                    .values
                },
            );
            stats.absorb_pool(run.stats);
            let computed = run
                .source
                .into_payloads()
                .into_iter()
                .map(|p| {
                    Some(
                        CandidateOutcome::from_json(
                            &p.expect("every missing pair was stolen and completed"),
                        )
                        .expect("outcome rows round-trip the wire"),
                    )
                })
                .collect();
            let baselines =
                run.resources.into_iter().map(|r| r.map(|values| Observable { values })).collect();
            (computed, baselines)
        };

    // Reassemble in pair-lattice order: cached rows slot back in where
    // they came from, stolen rows by their pair index.
    let mut fresh = computed.into_iter();
    let outcomes: Vec<CandidateOutcome> = cached
        .iter_mut()
        .map(|slot| match slot.take() {
            Some(o) => o,
            None => fresh
                .next()
                .expect("every missing pair was stolen and completed")
                .expect("server collected a done message per grant"),
        })
        .collect();
    debug_assert!(fresh.next().is_none(), "stolen rows fully consumed");

    // Per-scenario sections: group along the spine, re-gate, rank. A
    // scenario can legitimately own zero pairs (e.g. a cutoff-only
    // lattice on an unrefined workload); its section is just empty.
    let mut counts = vec![0usize; scenarios.len()];
    for p in &pairs {
        counts[p.scenario] += 1;
    }
    let mut reports: Vec<CampaignReport> = Vec::with_capacity(scenarios.len());
    let mut rows = outcomes.into_iter();
    for (si, scenario) in scenarios.iter().enumerate() {
        let mut section: Vec<CandidateOutcome> =
            (0..counts[si]).map(|_| rows.next().expect("one outcome per pair")).collect();
        regate_and_rank(&mut section, spec);
        let baseline_fidelity = match &baselines[si] {
            Some(obs) => scenario.fidelity(obs, obs),
            None => cache
                .as_deref()
                .and_then(|k| k.baseline(scenario.name(), &spec.params))
                .unwrap_or(1.0),
        };
        if let Some(k) = cache.as_deref_mut() {
            for o in &section {
                k.insert(scenario.name(), &spec.params, o);
            }
            k.set_baseline(scenario.name(), &spec.params, baseline_fidelity);
        }
        reports.push(CampaignReport {
            scenario: scenario.name().to_string(),
            crate_name: scenario.crate_name().to_string(),
            params: spec.params,
            fidelity_floor: spec.fidelity_floor,
            baseline_fidelity,
            outcomes: section,
        });
    }

    stats.wall_s = t0.elapsed().as_secs_f64();
    (StudyReport::assemble(spec, reports), stats)
}

/// Load the cache at `path`, run the study resumably across `nranks`
/// ranks, persist the updated cache, and append one [`StatsRecord`] to
/// the `stats_history.jsonl` next to it — the `--study --ranks N
/// --resume <path>` CLI flow as one call. The history append is
/// best-effort observability: a failure there is reported on stderr,
/// never allowed to discard the completed (and already persisted) run.
pub fn run_study_resumed(
    scenarios: &[Box<dyn Scenario>],
    spec: &CampaignSpec,
    nranks: usize,
    path: impl Into<std::path::PathBuf>,
) -> Result<(StudyReport, StudyStats), String> {
    let mut cache = OutcomeCache::load(path)?;
    let (report, stats) =
        run_study_distributed_resumable(scenarios, spec, nranks, Some(&mut cache));
    cache.save()?;
    if let Err(e) = append_stats_history(
        cache.path(),
        &StatsRecord::now(format!("study:{} scenarios", scenarios.len()), nranks, &stats),
    ) {
        eprintln!("warning: scheduler stats history not recorded: {e}");
    }
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::study_scenarios;
    use bigfloat::Format;
    use codesign::Machine;

    fn mini_spec(candidates: Vec<CandidateSpec>) -> CampaignSpec {
        CampaignSpec {
            params: LabParams::mini(),
            candidates,
            fidelity_floor: 0.999,
            workers: 4,
            machine: Machine::default(),
        }
    }

    #[test]
    fn study_stats_and_records_round_trip_through_json() {
        let stats = StudyStats {
            cached: 3,
            computed: 9,
            pairs_by_rank: vec![4, 5],
            stealers: 4,
            queue_wait_s: 0.25,
            wall_s: 1.5,
        };
        let back = StudyStats::from_json(&Json::parse(&stats.to_json().render()).unwrap()).unwrap();
        assert_eq!(back, stats);

        let record = StatsRecord {
            label: "study:3 scenarios".to_string(),
            cache: "study-cache.json".to_string(),
            ranks: 2,
            unix_ms: 1_753_000_000_000,
            stats,
        };
        let line = record.to_json().render_compact();
        assert!(!line.contains('\n'), "history rows are one line: {line}");
        let back = StatsRecord::from_json(&Json::parse(&line).unwrap()).unwrap();
        assert_eq!(back, record);
        // The trend table names the run, its cache, and its balance.
        let table = render_stats_history(&[back]);
        assert!(
            table.contains("study:3 scenarios")
                && table.contains("study-cache.json")
                && table.contains("4/5"),
            "{table}"
        );
    }

    #[test]
    fn stats_history_appends_and_loads_in_order() {
        let dir = std::env::temp_dir().join(format!(
            "raptor-stats-unit-{}-{}",
            std::process::id(),
            line!()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let cache_path = dir.join("cache.json");
        let mk = |computed: usize| StudyStats {
            cached: 0,
            computed,
            pairs_by_rank: vec![computed],
            stealers: 1,
            queue_wait_s: 0.0,
            wall_s: 0.1,
        };
        let p1 =
            append_stats_history(&cache_path, &StatsRecord::now("study:1 scenarios", 1, &mk(5)))
                .unwrap();
        let p2 =
            append_stats_history(&cache_path, &StatsRecord::now("study:1 scenarios", 2, &mk(0)))
                .unwrap();
        assert_eq!(p1, p2, "appends share one sibling file");
        assert_eq!(p1, stats_history_path(&cache_path));
        let records = load_stats_history(&p1).unwrap();
        assert_eq!(records.len(), 2, "one row per run");
        assert_eq!(records[0].stats.computed, 5, "oldest first");
        assert_eq!(records[1].stats.computed, 0);
        assert_eq!(records[1].ranks, 2);
        // Rows are attributable to their cache even though co-located
        // caches share one history file.
        assert!(records.iter().all(|r| r.cache == "cache.json"), "{:?}", records[0].cache);
        // Malformed lines are loud errors, not silent drops.
        std::fs::write(&p1, "{\"label\": \"x\"}\n").unwrap();
        assert!(load_stats_history(&p1).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn study_ranking_orders_accepted_scenarios_first() {
        let scenarios = study_scenarios(Some("ir/horner,ir/norm3")).unwrap();
        // A floor only wide formats clear: some scenario rows accept,
        // narrow-only lattices would not. Use one comfortable candidate.
        let spec = mini_spec(vec![
            CandidateSpec::op(Format::new(11, 40)),
            CandidateSpec::op(Format::new(11, 4)),
        ]);
        let study = run_study(&scenarios, &spec);
        assert_eq!(study.scenarios.len(), 2);
        assert_eq!(study.ranking.len(), 2);
        // Sections keep registry order; ranking is sorted by verdict.
        assert_eq!(study.scenarios[0].scenario, "ir/horner");
        assert_eq!(study.scenarios[1].scenario, "ir/norm3");
        let rec: Vec<bool> = study.ranking.iter().map(|r| r.recommended.is_some()).collect();
        assert!(rec.windows(2).all(|w| w[0] >= w[1]), "accepted first: {rec:?}");
        for row in &study.ranking {
            assert_eq!(row.total, 2);
            if row.recommended.is_none() {
                assert_eq!(row.predicted_speedup, 1.0, "FP64 hold-out is neutral");
            }
        }
        // The markdown table carries every scenario.
        let md = study.render_markdown();
        assert!(md.contains("| ir/horner |") && md.contains("| ir/norm3 |"));
    }

    #[test]
    fn study_report_round_trips_through_json() {
        let scenarios = study_scenarios(Some("ir/horner")).unwrap();
        let spec = mini_spec(vec![
            CandidateSpec::op(Format::new(11, 30)),
            CandidateSpec::op(Format::new(11, 6)),
        ]);
        let study = run_study(&scenarios, &spec);
        let text = study.to_json().render();
        let back = StudyReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, study, "study report round-trips losslessly");
        assert_eq!(back.to_json().render(), text);
    }
}
