//! Full-registry studies: every scenario swept over one candidate
//! lattice, fidelity-gated, and ranked into a single cross-scenario
//! codesign table — the paper's headline artifact (Table 1's shape) as
//! one API call.
//!
//! A *study* flattens the two-level loop the campaign engine left
//! implicit: instead of sharding the candidates of one scenario across
//! minimpi ranks, [`run_study_distributed`] enumerates every
//! `(scenario, candidate)` **pair** across the whole registry (or a
//! subset, see [`crate::study_scenarios`]) and distributes the flattened
//! pair list with an **elastic work-stealing scheduler**:
//!
//! * rank 0 runs a queue server thread that serves pair indices over the
//!   existing byte mailboxes — `request` / `grant` / `done` messages on
//!   the [`minimpi::Wire`] layer, one shared server-bound tag so per-rank
//!   FIFO delivery orders each worker's `done` before its next `request`;
//! * every rank (rank 0 included) contributes `workers / nranks` stealer
//!   threads; each steals one pair at a time, so skewed per-pair costs
//!   (a Kelvin–Helmholtz hydro run next to a 16-call IR kernel) never
//!   leave ranks idle the way the static block partition of
//!   [`crate::run_campaign_distributed`] can;
//! * the server holds the first round of grants until every stealer has
//!   checked in, so each stealer is guaranteed at least one pair whenever
//!   the queue is deep enough — stealing starts fair, then runs elastic;
//! * per-scenario full-precision baselines are **broadcast lazily on
//!   first touch**: the first stealer to need a scenario's baseline is
//!   told to compute it and upload it; stealers that ask while it is in
//!   flight are parked and answered the moment the upload lands, and
//!   scenarios whose pairs are all cache hits never run a baseline at
//!   all;
//! * one shared [`OutcomeCache`] file covers the whole study (the cache
//!   key already carries the scenario name), so a warm resume of a
//!   completed study performs **zero** runs.
//!
//! The merged [`StudyReport`] carries one ranked [`CampaignReport`]
//! section per scenario plus a cross-scenario codesign ranking, and its
//! JSON rendering is **byte-identical for any rank count**: pairs are
//! reassembled in lattice order before the deterministic re-gate + stable
//! ranking sort, so where a pair ran never shows in the result.
//!
//! ```
//! use raptor_lab::{run_study, run_study_distributed, study_scenarios, CampaignSpec, LabParams};
//!
//! let scenarios = study_scenarios(Some("ir/horner,ir/norm3")).unwrap();
//! let spec = CampaignSpec::sweep(LabParams::mini());
//! let single = run_study(&scenarios, &spec);
//! let stolen = run_study_distributed(&scenarios, &spec, 2);
//! assert_eq!(stolen.to_json().render(), single.to_json().render());
//! println!("{}", stolen.render_markdown()); // the Table-1-style summary
//! ```

use crate::cache::OutcomeCache;
use crate::campaign::{
    eligible_candidates, regate_and_rank, run_campaign, run_candidate, CampaignReport,
    CampaignSpec, CandidateOutcome, CandidateSpec,
};
use crate::scenario::{LabParams, Observable, Scenario};
use minimpi::{Json, Wire};
use raptor_core::Session;

/// Tag for every server-bound study message. One tag on purpose: a
/// rank's mailbox is FIFO per tag, so a stealer's `done` is always
/// processed before the `request` it sends next — the server can shut
/// down after the last grant knowing every outcome has landed.
const TAG_STUDY: u64 = 0x57DD;
/// Base of the per-stealer reply-tag range: stealer `slot` of a rank
/// listens on `TAG_STUDY_REPLY + slot`, its private channel to rank 0.
const TAG_STUDY_REPLY: u64 = 0x57DE_0000;

fn reply_tag(slot: u64) -> u64 {
    TAG_STUDY_REPLY + slot
}

// ---------------------------------------------------------------------------
// Wire protocol
// ---------------------------------------------------------------------------

/// Worker → server messages of the work-stealing scheduler.
enum ToServer {
    /// "Give me a pair index" — `slot` picks the reply tag.
    Request { slot: u64 },
    /// "Pair `pair` is finished; here is its outcome row." (Boxed: the
    /// row dwarfs the other variants.)
    Done { pair: u64, outcome: Box<CandidateOutcome> },
    /// "I need the full-precision baseline of scenario `scenario`."
    BaselineReq { scenario: u64, slot: u64 },
    /// "Here is the baseline I was told to compute."
    BaselinePut { scenario: u64, values: Vec<f64> },
}

/// Server → worker replies, sent on the requesting stealer's reply tag.
enum FromServer {
    /// Run pair `pair` next.
    Grant { pair: u64 },
    /// The queue is empty; shut down.
    NoMoreWork,
    /// The requested baseline observable.
    Baseline { values: Vec<f64> },
    /// First touch: the requester computes the baseline and uploads it
    /// with [`ToServer::BaselinePut`].
    ComputeBaseline,
}

/// Baseline observables must cross the wire **bit-exactly** — every rank
/// scores trials against the same bits, and JSON numbers cannot carry
/// NaN payloads or the sign of zero. They travel as one hex string of
/// 16-character `f64::to_bits` words (the Wire-layer twin of the raw-f64
/// broadcast the block-partitioned campaigns use).
fn values_to_json(values: &[f64]) -> Json {
    let mut hex = String::with_capacity(values.len() * 16);
    for v in values {
        hex.push_str(&format!("{:016x}", v.to_bits()));
    }
    Json::Str(hex)
}

fn values_from_json(doc: &Json) -> Result<Vec<f64>, String> {
    let hex = doc.as_str().ok_or_else(|| "values is not a hex string".to_string())?;
    if hex.len() % 16 != 0 {
        return Err(format!("hex payload length {} is not a multiple of 16", hex.len()));
    }
    hex.as_bytes()
        .chunks_exact(16)
        .map(|chunk| {
            let word = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
            u64::from_str_radix(word, 16)
                .map(f64::from_bits)
                .map_err(|e| format!("bad f64 bit pattern `{word}`: {e}"))
        })
        .collect()
}

impl Wire for ToServer {
    fn to_wire(&self) -> Json {
        match self {
            ToServer::Request { slot } => Json::obj().set("type", "request").set("slot", *slot),
            ToServer::Done { pair, outcome } => Json::obj()
                .set("type", "done")
                .set("pair", *pair)
                .set("outcome", outcome.to_json()),
            ToServer::BaselineReq { scenario, slot } => Json::obj()
                .set("type", "baseline_req")
                .set("scenario", *scenario)
                .set("slot", *slot),
            ToServer::BaselinePut { scenario, values } => Json::obj()
                .set("type", "baseline_put")
                .set("scenario", *scenario)
                .set("values", values_to_json(values)),
        }
    }

    fn from_wire(doc: &Json) -> Result<ToServer, String> {
        match doc.str_field("type")? {
            "request" => Ok(ToServer::Request { slot: doc.u64_field("slot")? }),
            "done" => Ok(ToServer::Done {
                pair: doc.u64_field("pair")?,
                outcome: Box::new(CandidateOutcome::from_json(doc.req("outcome")?)?),
            }),
            "baseline_req" => Ok(ToServer::BaselineReq {
                scenario: doc.u64_field("scenario")?,
                slot: doc.u64_field("slot")?,
            }),
            "baseline_put" => Ok(ToServer::BaselinePut {
                scenario: doc.u64_field("scenario")?,
                values: values_from_json(doc.req("values")?)?,
            }),
            other => Err(format!("unknown study message `{other}`")),
        }
    }
}

impl Wire for FromServer {
    fn to_wire(&self) -> Json {
        match self {
            FromServer::Grant { pair } => Json::obj().set("type", "grant").set("pair", *pair),
            FromServer::NoMoreWork => Json::obj().set("type", "no_more_work"),
            FromServer::Baseline { values } => {
                Json::obj().set("type", "baseline").set("values", values_to_json(values))
            }
            FromServer::ComputeBaseline => Json::obj().set("type", "compute_baseline"),
        }
    }

    fn from_wire(doc: &Json) -> Result<FromServer, String> {
        match doc.str_field("type")? {
            "grant" => Ok(FromServer::Grant { pair: doc.u64_field("pair")? }),
            "no_more_work" => Ok(FromServer::NoMoreWork),
            "baseline" => {
                Ok(FromServer::Baseline { values: values_from_json(doc.req("values")?)? })
            }
            "compute_baseline" => Ok(FromServer::ComputeBaseline),
            other => Err(format!("unknown study reply `{other}`")),
        }
    }
}

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// One row of the cross-scenario codesign ranking: what the study
/// recommends for one workload (Table 1's shape — workload, the chosen
/// truncation, its fidelity, and the predicted payoff).
#[derive(Clone, Debug, PartialEq)]
pub struct StudyRow {
    /// Scenario name.
    pub scenario: String,
    /// Scenario crate.
    pub crate_name: String,
    /// Label of the best accepted candidate (`None`: nothing cleared the
    /// fidelity floor — stay at FP64).
    pub recommended: Option<String>,
    /// Fidelity of the recommended candidate (of the least-bad rejected
    /// one when nothing was accepted).
    pub fidelity: f64,
    /// Predicted speedup of the recommendation (`1.0` when staying at
    /// FP64).
    pub predicted_speedup: f64,
    /// Truncated-op fraction of the reported candidate.
    pub truncated_fraction: f64,
    /// Candidates that cleared the fidelity floor.
    pub accepted: usize,
    /// Candidates swept.
    pub total: usize,
}

impl StudyRow {
    fn from_report(report: &CampaignReport) -> StudyRow {
        let accepted =
            report.outcomes.iter().filter(|o| o.accepted && o.error.is_none()).count();
        let shown = report
            .best()
            .or_else(|| report.outcomes.iter().find(|o| o.error.is_none()));
        StudyRow {
            scenario: report.scenario.clone(),
            crate_name: report.crate_name.clone(),
            recommended: report.best().map(|b| b.spec.label()),
            fidelity: shown.map(|o| o.fidelity).unwrap_or(1.0),
            predicted_speedup: report.best().map(|b| b.predicted_speedup).unwrap_or(1.0),
            truncated_fraction: shown.map(|o| o.counters.truncated_fraction()).unwrap_or(0.0),
            accepted,
            total: report.outcomes.len(),
        }
    }

    /// Machine-readable ranking row.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("scenario", self.scenario.as_str())
            .set("crate", self.crate_name.as_str())
            .set(
                "recommended",
                match &self.recommended {
                    Some(label) => Json::from(label.as_str()),
                    None => Json::Null,
                },
            )
            .set("fidelity", Json::from_f64_lossless(self.fidelity))
            .set("predicted_speedup", Json::from_f64_lossless(self.predicted_speedup))
            .set("truncated_fraction", Json::from_f64_lossless(self.truncated_fraction))
            .set("accepted", self.accepted as u64)
            .set("total", self.total as u64)
    }

    /// Parse back a document produced by [`StudyRow::to_json`].
    pub fn from_json(doc: &Json) -> Result<StudyRow, String> {
        Ok(StudyRow {
            scenario: doc.str_field("scenario")?.to_string(),
            crate_name: doc.str_field("crate")?.to_string(),
            recommended: match doc.req("recommended")? {
                Json::Null => None,
                label => Some(
                    label
                        .as_str()
                        .ok_or_else(|| "recommended is not a string".to_string())?
                        .to_string(),
                ),
            },
            fidelity: doc.f64_field_lossless("fidelity")?,
            predicted_speedup: doc.f64_field_lossless("predicted_speedup")?,
            truncated_fraction: doc.f64_field_lossless("truncated_fraction")?,
            accepted: doc.u64_field("accepted")? as usize,
            total: doc.u64_field("total")? as usize,
        })
    }
}

/// A completed study: one ranked campaign section per scenario plus the
/// cross-scenario codesign ranking.
#[derive(Clone, Debug, PartialEq)]
pub struct StudyReport {
    /// Scale the study ran at.
    pub params: LabParams,
    /// The acceptance floor used by every campaign.
    pub fidelity_floor: f64,
    /// Per-scenario campaign sections, in registry order.
    pub scenarios: Vec<CampaignReport>,
    /// Cross-scenario ranking: scenarios with an accepted candidate
    /// first, by predicted speedup; FP64 hold-outs last. Ties break on
    /// the scenario name so the order is total and deterministic.
    pub ranking: Vec<StudyRow>,
}

impl StudyReport {
    /// Build the study from its per-scenario reports (the single place
    /// the ranking is derived, shared by the serial and distributed
    /// drivers so both produce byte-identical output).
    fn assemble(spec: &CampaignSpec, scenarios: Vec<CampaignReport>) -> StudyReport {
        let mut ranking: Vec<StudyRow> = scenarios.iter().map(StudyRow::from_report).collect();
        ranking.sort_by(|a, b| {
            b.recommended
                .is_some()
                .cmp(&a.recommended.is_some())
                .then_with(|| {
                    b.predicted_speedup
                        .partial_cmp(&a.predicted_speedup)
                        .unwrap_or(core::cmp::Ordering::Equal)
                })
                .then_with(|| a.scenario.cmp(&b.scenario))
        });
        StudyReport {
            params: spec.params,
            fidelity_floor: spec.fidelity_floor,
            scenarios,
            ranking,
        }
    }

    /// The campaign section of one scenario, if it was part of the study.
    pub fn scenario(&self, name: &str) -> Option<&CampaignReport> {
        self.scenarios.iter().find(|r| r.scenario == name)
    }

    /// Machine-readable study summary through the shared serializer.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set(
                "params",
                Json::obj()
                    .set("scale", self.params.scale)
                    .set("threads", self.params.threads),
            )
            .set("fidelity_floor", self.fidelity_floor)
            .set(
                "scenarios",
                Json::Arr(self.scenarios.iter().map(|r| r.to_json()).collect()),
            )
            .set("ranking", Json::Arr(self.ranking.iter().map(|r| r.to_json()).collect()))
    }

    /// Parse back a document produced by [`StudyReport::to_json`].
    pub fn from_json(doc: &Json) -> Result<StudyReport, String> {
        let params = doc.req("params")?;
        Ok(StudyReport {
            params: LabParams {
                scale: params.u64_field("scale")? as u32,
                threads: params.u64_field("threads")? as usize,
            },
            fidelity_floor: doc.f64_field("fidelity_floor")?,
            scenarios: doc
                .arr_field("scenarios")?
                .iter()
                .map(CampaignReport::from_json)
                .collect::<Result<Vec<CampaignReport>, String>>()?,
            ranking: doc
                .arr_field("ranking")?
                .iter()
                .map(StudyRow::from_json)
                .collect::<Result<Vec<StudyRow>, String>>()?,
        })
    }

    /// The cross-scenario ranking as a markdown table (Table-1-style),
    /// the `codesign_advisor --study` rendering.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## Codesign study ({} scenarios, fidelity floor {})\n\n",
            self.scenarios.len(),
            self.fidelity_floor
        ));
        out.push_str("| scenario | crate | recommended | fidelity | speedup | trunc % | accepted |\n");
        out.push_str("|---|---|---|---|---|---|---|\n");
        for row in &self.ranking {
            out.push_str(&format!(
                "| {} | {} | {} | {:.6} | {:.2}x | {:.1}% | {}/{} |\n",
                row.scenario,
                row.crate_name,
                row.recommended.as_deref().unwrap_or("*stay at FP64*"),
                row.fidelity,
                row.predicted_speedup,
                100.0 * row.truncated_fraction,
                row.accepted,
                row.total
            ));
        }
        out
    }

    /// Human-readable study summary: the ranking table plus each
    /// scenario's campaign table.
    pub fn render_table(&self) -> String {
        let mut out = self.render_markdown();
        for report in &self.scenarios {
            out.push('\n');
            out.push_str(&report.render_table());
        }
        out
    }
}

/// What a study run did, per rank: how the work-stealing queue spread
/// the pair list, and how much of it the shared cache absorbed. Kept out
/// of [`StudyReport`] on purpose — the report must be byte-identical
/// across rank counts; the stats are where the distribution shows.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StudyStats {
    /// Pairs served from the shared cache without running anything.
    pub cached: usize,
    /// Pairs computed in this invocation.
    pub computed: usize,
    /// Pairs completed by each rank (sums to `computed`). Length equals
    /// the rank count; a fully-warm resume has every entry zero.
    pub pairs_by_rank: Vec<usize>,
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// Run the study serially in-process: one campaign per scenario (each
/// scenario's candidates still sweep in parallel on the process-wide
/// pool), then the cross-scenario ranking. The reference implementation
/// the distributed driver is tested against.
pub fn run_study(scenarios: &[Box<dyn Scenario>], spec: &CampaignSpec) -> StudyReport {
    let reports: Vec<CampaignReport> =
        scenarios.iter().map(|s| run_campaign(s.as_ref(), spec)).collect();
    StudyReport::assemble(spec, reports)
}

/// One entry of the flattened `(scenario, candidate)` pair lattice.
struct Pair {
    /// Index into the study's scenario list.
    scenario: usize,
    candidate: CandidateSpec,
}

/// Run the study sharded across `nranks` minimpi ranks with the
/// work-stealing scheduler. The merged report is byte-identical (JSON)
/// to [`run_study`] for any rank count.
pub fn run_study_distributed(
    scenarios: &[Box<dyn Scenario>],
    spec: &CampaignSpec,
    nranks: usize,
) -> StudyReport {
    run_study_distributed_resumable(scenarios, spec, nranks, None).0
}

/// [`run_study_distributed`] with the shared study cache: pairs already
/// cached are served without running anything (a fully-warm resume of a
/// whole study performs zero runs, baselines included); only missing
/// pairs enter the work-stealing queue, and every row of the merged
/// report is written back.
pub fn run_study_distributed_resumable(
    scenarios: &[Box<dyn Scenario>],
    spec: &CampaignSpec,
    nranks: usize,
    mut cache: Option<&mut OutcomeCache>,
) -> (StudyReport, StudyStats) {
    let nranks = nranks.max(1);
    let max_levels: Vec<u32> = scenarios.iter().map(|s| s.max_level(&spec.params)).collect();

    // The flattened pair lattice, in (scenario, candidate) order — the
    // deterministic spine every merge below reassembles along.
    let mut pairs: Vec<Pair> = Vec::new();
    for (si, _) in scenarios.iter().enumerate() {
        for c in eligible_candidates(spec, max_levels[si]) {
            pairs.push(Pair { scenario: si, candidate: c.clone() });
        }
    }
    let mut cached: Vec<Option<CandidateOutcome>> = pairs
        .iter()
        .map(|p| {
            cache.as_deref().and_then(|k| {
                k.get(scenarios[p.scenario].name(), &spec.params, &p.candidate).cloned()
            })
        })
        .collect();
    let missing: Vec<&Pair> =
        pairs.iter().zip(&cached).filter(|(_, hit)| hit.is_none()).map(|(p, _)| p).collect();

    let mut stats = StudyStats {
        cached: pairs.len() - missing.len(),
        computed: missing.len(),
        pairs_by_rank: vec![0; nranks],
    };

    // Baselines of scenarios some stealer actually touched (index ==
    // scenario index); fully-cached scenarios stay `None` and fall back
    // to their cached baseline self-fidelity.
    let (computed, baselines): (Vec<Option<CandidateOutcome>>, Vec<Option<Observable>>) =
        if missing.is_empty() {
            (Vec::new(), vec![None; scenarios.len()])
        } else {
            let served = steal_pairs(scenarios, spec, nranks, &missing, &max_levels);
            stats.pairs_by_rank = served.pairs_by_rank;
            (served.outcomes, served.baselines)
        };

    // Reassemble in pair-lattice order: cached rows slot back in where
    // they came from, stolen rows by their pair index.
    let mut fresh = computed.into_iter();
    let outcomes: Vec<CandidateOutcome> = cached
        .iter_mut()
        .map(|slot| match slot.take() {
            Some(o) => o,
            None => fresh
                .next()
                .expect("every missing pair was stolen and completed")
                .expect("server collected a done message per grant"),
        })
        .collect();
    debug_assert!(fresh.next().is_none(), "stolen rows fully consumed");

    // Per-scenario sections: group along the spine, re-gate, rank. A
    // scenario can legitimately own zero pairs (e.g. a cutoff-only
    // lattice on an unrefined workload); its section is just empty.
    let mut counts = vec![0usize; scenarios.len()];
    for p in &pairs {
        counts[p.scenario] += 1;
    }
    let mut reports: Vec<CampaignReport> = Vec::with_capacity(scenarios.len());
    let mut rows = outcomes.into_iter();
    for (si, scenario) in scenarios.iter().enumerate() {
        let mut section: Vec<CandidateOutcome> =
            (0..counts[si]).map(|_| rows.next().expect("one outcome per pair")).collect();
        regate_and_rank(&mut section, spec);
        let baseline_fidelity = match &baselines[si] {
            Some(obs) => scenario.fidelity(obs, obs),
            None => cache
                .as_deref()
                .and_then(|k| k.baseline(scenario.name(), &spec.params))
                .unwrap_or(1.0),
        };
        if let Some(k) = cache.as_deref_mut() {
            for o in &section {
                k.insert(scenario.name(), &spec.params, o);
            }
            k.set_baseline(scenario.name(), &spec.params, baseline_fidelity);
        }
        reports.push(CampaignReport {
            scenario: scenario.name().to_string(),
            crate_name: scenario.crate_name().to_string(),
            params: spec.params,
            fidelity_floor: spec.fidelity_floor,
            baseline_fidelity,
            outcomes: section,
        });
    }

    (StudyReport::assemble(spec, reports), stats)
}

/// Load the cache at `path`, run the study resumably across `nranks`
/// ranks, and persist the updated cache — the `--study --ranks N
/// --resume <path>` CLI flow as one call.
pub fn run_study_resumed(
    scenarios: &[Box<dyn Scenario>],
    spec: &CampaignSpec,
    nranks: usize,
    path: impl Into<std::path::PathBuf>,
) -> Result<(StudyReport, StudyStats), String> {
    let mut cache = OutcomeCache::load(path)?;
    let (report, stats) =
        run_study_distributed_resumable(scenarios, spec, nranks, Some(&mut cache));
    cache.save()?;
    Ok((report, stats))
}

// ---------------------------------------------------------------------------
// The work-stealing scheduler
// ---------------------------------------------------------------------------

/// What the rank-0 server hands back after the queue drains.
struct Served {
    /// One outcome per missing pair, in missing-list order.
    outcomes: Vec<Option<CandidateOutcome>>,
    /// Lazily computed baselines, by scenario index.
    baselines: Vec<Option<Observable>>,
    /// Pairs completed per rank.
    pairs_by_rank: Vec<usize>,
}

/// Distribute `missing` pairs across `nranks` ranks × `workers / nranks`
/// stealer threads each, rank 0 serving the queue.
fn steal_pairs(
    scenarios: &[Box<dyn Scenario>],
    spec: &CampaignSpec,
    nranks: usize,
    missing: &[&Pair],
    max_levels: &[u32],
) -> Served {
    let rank_workers = (spec.workers / nranks).max(1);
    let total_stealers = nranks * rank_workers;
    let mut results = minimpi::run(nranks, |comm| -> Option<Served> {
        // Every rank is up before the first grant can be answered; with
        // the fair-start preamble below this guarantees each stealer one
        // pair whenever the queue is deep enough.
        comm.barrier();
        let comm = &comm;
        std::thread::scope(|sc| {
            let server = (comm.rank() == 0).then(|| {
                sc.spawn(move || run_server(comm, scenarios, missing, total_stealers))
            });
            let mut stealers = Vec::with_capacity(rank_workers);
            for slot in 0..rank_workers {
                stealers.push(sc.spawn(move || {
                    run_stealer(comm, scenarios, spec, missing, max_levels, slot as u64)
                }));
            }
            for s in stealers {
                s.join().expect("stealer thread panicked");
            }
            server.map(|h| h.join().expect("study server panicked"))
        })
    });
    results[0].take().expect("rank 0 ran the queue server")
}

/// The rank-0 queue server: one thread, one shared inbound tag,
/// request/grant/done plus the lazy-baseline sub-protocol.
fn run_server(
    comm: &minimpi::Comm,
    scenarios: &[Box<dyn Scenario>],
    missing: &[&Pair],
    total_stealers: usize,
) -> Served {
    let mut outcomes: Vec<Option<CandidateOutcome>> = (0..missing.len()).map(|_| None).collect();
    let mut baselines: Vec<Option<Observable>> = (0..scenarios.len()).map(|_| None).collect();
    let mut pairs_by_rank = vec![0usize; comm.size()];
    // Baseline bookkeeping: who is computing, who is parked waiting.
    let mut computing = vec![false; scenarios.len()];
    let mut parked: Vec<Vec<(usize, u64)>> = (0..scenarios.len()).map(|_| Vec::new()).collect();

    let mut next = 0usize;
    let mut dones_sent = 0usize;

    // Fair start: hold the first round of grants until every stealer has
    // checked in, then grant in (rank, slot) order. Work-stealing keeps
    // skewed costs from idling ranks *later*; this keeps a fast starter
    // from draining a shallow queue before its peers even launch.
    let mut first_round: Vec<(usize, u64)> = Vec::with_capacity(total_stealers);
    while first_round.len() < total_stealers {
        match comm.recv_wire_any::<ToServer>(TAG_STUDY).expect("study message parses") {
            (src, ToServer::Request { slot }) => first_round.push((src, slot)),
            _ => unreachable!("no grants issued yet, so only requests can arrive"),
        }
    }
    first_round.sort_unstable();
    for &(src, slot) in &first_round {
        if next < missing.len() {
            comm.send_wire(src, reply_tag(slot), &FromServer::Grant { pair: next as u64 });
            pairs_by_rank[src] += 1;
            next += 1;
        } else {
            comm.send_wire(src, reply_tag(slot), &FromServer::NoMoreWork);
            dones_sent += 1;
        }
    }

    // Elastic phase: serve until every stealer has been dismissed. The
    // shared TAG_STUDY keeps each stealer's `done` ahead of its next
    // `request` in mailbox order, so dismissal implies all outcomes in.
    while dones_sent < total_stealers {
        match comm.recv_wire_any::<ToServer>(TAG_STUDY).expect("study message parses") {
            (src, ToServer::Request { slot }) => {
                if next < missing.len() {
                    comm.send_wire(src, reply_tag(slot), &FromServer::Grant { pair: next as u64 });
                    pairs_by_rank[src] += 1;
                    next += 1;
                } else {
                    comm.send_wire(src, reply_tag(slot), &FromServer::NoMoreWork);
                    dones_sent += 1;
                }
            }
            (_, ToServer::Done { pair, outcome }) => {
                outcomes[pair as usize] = Some(*outcome);
            }
            (src, ToServer::BaselineReq { scenario, slot }) => {
                let si = scenario as usize;
                match &baselines[si] {
                    Some(obs) => comm.send_wire(
                        src,
                        reply_tag(slot),
                        &FromServer::Baseline { values: obs.values.clone() },
                    ),
                    None if !computing[si] => {
                        // First touch: the requester computes and uploads.
                        computing[si] = true;
                        comm.send_wire(src, reply_tag(slot), &FromServer::ComputeBaseline);
                    }
                    None => parked[si].push((src, slot)),
                }
            }
            (_, ToServer::BaselinePut { scenario, values }) => {
                let si = scenario as usize;
                for (r, slot) in parked[si].drain(..) {
                    comm.send_wire(
                        r,
                        reply_tag(slot),
                        &FromServer::Baseline { values: values.clone() },
                    );
                }
                baselines[si] = Some(Observable { values });
            }
        }
    }
    debug_assert_eq!(next, missing.len(), "every pair was granted exactly once");
    Served { outcomes, baselines, pairs_by_rank }
}

/// One stealer thread: request → (baseline on first touch of a
/// scenario) → run the pair → done → request, until dismissed.
fn run_stealer(
    comm: &minimpi::Comm,
    scenarios: &[Box<dyn Scenario>],
    spec: &CampaignSpec,
    missing: &[&Pair],
    max_levels: &[u32],
    slot: u64,
) {
    // Baselines this stealer has already seen (a thread-local map: a few
    // scenarios per study, so duplicate fetches across threads are cheap
    // and keep the protocol free of cross-thread locking).
    let mut known: Vec<Option<Observable>> = (0..scenarios.len()).map(|_| None).collect();
    loop {
        let reply: FromServer = comm
            .request_wire(0, TAG_STUDY, reply_tag(slot), &ToServer::Request { slot })
            .expect("study reply parses");
        let pair = match reply {
            FromServer::Grant { pair } => pair as usize,
            FromServer::NoMoreWork => return,
            _ => unreachable!("work requests are answered with grant or dismissal"),
        };
        let Pair { scenario: si, candidate } = missing[pair];
        let scenario = scenarios[*si].as_ref();
        if known[*si].is_none() {
            let reply: FromServer = comm
                .request_wire(
                    0,
                    TAG_STUDY,
                    reply_tag(slot),
                    &ToServer::BaselineReq { scenario: *si as u64, slot },
                )
                .expect("study reply parses");
            known[*si] = Some(match reply {
                FromServer::Baseline { values } => Observable { values },
                FromServer::ComputeBaseline => {
                    let obs = amr::run_inline(|| {
                        scenario.build(&spec.params).run(&Session::passthrough())
                    });
                    comm.send_wire(
                        0,
                        TAG_STUDY,
                        &ToServer::BaselinePut { scenario: *si as u64, values: obs.values.clone() },
                    );
                    obs
                }
                _ => unreachable!("baseline requests are answered with values or compute"),
            });
        }
        let baseline = known[*si].as_ref().expect("baseline resolved above");
        // Stealers are plain threads, not pool workers: mark each pair
        // run as in-sweep so a scenario's interior mesh sweeps
        // (params.threads > 1) run inline instead of serializing all
        // stealers on the process-wide pool's submit lock — the same
        // one-level-of-parallelism rule pool workers get implicitly.
        let outcome =
            amr::run_inline(|| run_candidate(scenario, spec, candidate, max_levels[*si], baseline));
        comm.send_wire(
            0,
            TAG_STUDY,
            &ToServer::Done { pair: pair as u64, outcome: Box::new(outcome) },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::study_scenarios;
    use bigfloat::Format;
    use codesign::Machine;

    fn mini_spec(candidates: Vec<CandidateSpec>) -> CampaignSpec {
        CampaignSpec {
            params: LabParams::mini(),
            candidates,
            fidelity_floor: 0.999,
            workers: 4,
            machine: Machine::default(),
        }
    }

    #[test]
    fn protocol_messages_round_trip() {
        let msgs = [
            ToServer::Request { slot: 3 },
            ToServer::BaselineReq { scenario: 7, slot: 0 },
            ToServer::BaselinePut {
                scenario: 2,
                values: vec![1.5, -0.0, f64::INFINITY, f64::NAN, 5e-324],
            },
        ];
        for m in &msgs {
            let back = ToServer::from_wire_bytes(&m.to_wire_bytes()).unwrap();
            match (m, &back) {
                (ToServer::Request { slot: a }, ToServer::Request { slot: b }) => {
                    assert_eq!(a, b)
                }
                (
                    ToServer::BaselineReq { scenario: s1, slot: a },
                    ToServer::BaselineReq { scenario: s2, slot: b },
                ) => assert_eq!((s1, a), (s2, b)),
                (
                    ToServer::BaselinePut { scenario: s1, values: v1 },
                    ToServer::BaselinePut { scenario: s2, values: v2 },
                ) => {
                    assert_eq!(s1, s2);
                    assert_eq!(v1.len(), v2.len());
                    for (a, b) in v1.iter().zip(v2) {
                        assert_eq!(a.to_bits(), b.to_bits(), "lossless incl. non-finite");
                    }
                }
                _ => panic!("message kind changed in round trip"),
            }
        }
        let replies = [
            FromServer::Grant { pair: 11 },
            FromServer::NoMoreWork,
            FromServer::Baseline { values: vec![2.0, -1.0] },
            FromServer::ComputeBaseline,
        ];
        for r in &replies {
            let back = FromServer::from_wire_bytes(&r.to_wire_bytes()).unwrap();
            assert_eq!(
                std::mem::discriminant(r),
                std::mem::discriminant(&back),
                "reply kind survives"
            );
        }
    }

    #[test]
    fn study_ranking_orders_accepted_scenarios_first() {
        let scenarios = study_scenarios(Some("ir/horner,ir/norm3")).unwrap();
        // A floor only wide formats clear: some scenario rows accept,
        // narrow-only lattices would not. Use one comfortable candidate.
        let spec = mini_spec(vec![
            CandidateSpec::op(Format::new(11, 40)),
            CandidateSpec::op(Format::new(11, 4)),
        ]);
        let study = run_study(&scenarios, &spec);
        assert_eq!(study.scenarios.len(), 2);
        assert_eq!(study.ranking.len(), 2);
        // Sections keep registry order; ranking is sorted by verdict.
        assert_eq!(study.scenarios[0].scenario, "ir/horner");
        assert_eq!(study.scenarios[1].scenario, "ir/norm3");
        let rec: Vec<bool> = study.ranking.iter().map(|r| r.recommended.is_some()).collect();
        assert!(rec.windows(2).all(|w| w[0] >= w[1]), "accepted first: {rec:?}");
        for row in &study.ranking {
            assert_eq!(row.total, 2);
            if row.recommended.is_none() {
                assert_eq!(row.predicted_speedup, 1.0, "FP64 hold-out is neutral");
            }
        }
        // The markdown table carries every scenario.
        let md = study.render_markdown();
        assert!(md.contains("| ir/horner |") && md.contains("| ir/norm3 |"));
    }

    #[test]
    fn study_report_round_trips_through_json() {
        let scenarios = study_scenarios(Some("ir/horner")).unwrap();
        let spec = mini_spec(vec![
            CandidateSpec::op(Format::new(11, 30)),
            CandidateSpec::op(Format::new(11, 6)),
        ]);
        let study = run_study(&scenarios, &spec);
        let text = study.to_json().render();
        let back = StudyReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, study, "study report round-trips losslessly");
        assert_eq!(back.to_json().render(), text);
    }
}
