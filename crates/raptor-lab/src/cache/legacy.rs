//! Parser for the retired whole-file cache format (version 1): one JSON
//! document holding every outcome and baseline, atomically rewritten on
//! each save. [`super::OutcomeCache::load`] migrates such a file into
//! the sharded directory layout exactly once — see the migration notes
//! on `load` — and this module only knows how to *read* the old shape.

use crate::campaign::CandidateOutcome;
use raptor_core::Json;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The decoded contents of a legacy single-file cache.
pub(crate) struct LegacyCache {
    pub(crate) entries: BTreeMap<String, CandidateOutcome>,
    pub(crate) baselines: BTreeMap<String, f64>,
}

/// Parse the legacy whole-file document. A corrupt legacy file is an
/// error, exactly as it was when this format was live — silently
/// discarding completed work would be worse.
pub(crate) fn parse(text: &str, path: &Path) -> Result<LegacyCache, String> {
    let doc = Json::parse(text).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut cache = LegacyCache { entries: BTreeMap::new(), baselines: BTreeMap::new() };
    for entry in doc.arr_field("entries")? {
        let outcome = CandidateOutcome::from_json(entry.req("outcome")?)?;
        cache.entries.insert(entry.str_field("key")?.to_string(), outcome);
    }
    for b in doc.arr_field("baselines")? {
        cache.baselines.insert(b.str_field("key")?.to_string(), b.f64_field("fidelity")?);
    }
    Ok(cache)
}

/// Where a legacy file is parked during migration: a `.legacy-v1`
/// sibling of the cache directory that replaces it. The sibling is
/// absorbed (and only then deleted) on the next load, so a crash at any
/// point of the migration redoes cleanly instead of losing rows.
pub(crate) fn legacy_sibling(path: &Path) -> PathBuf {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("cache");
    path.with_file_name(format!("{name}.legacy-v1"))
}
