//! The sharded on-disk layout: per-scenario directories of append-only
//! JSONL shard files, with content-addressed row placement.
//!
//! ```text
//! cache_dir/
//!   stats_history.jsonl          (scheduler stats, one line per run)
//!   hydro__sod/                  (scenario dir: `/` -> `__`)
//!     shard0.jsonl  shard0.lock
//!     shard1.jsonl  shard1.lock
//!     ...
//!   ir__horner/
//!     ...
//! ```
//!
//! A row's home shard is a pure function of its key —
//! `fnv1a64(key) % N_SHARDS` — so every appender, in every process,
//! agrees on where a row lives without coordination ("content-addressed"
//! placement). Writers *append* one compact JSON line per row under the
//! shard's advisory lock ([`super::lock`]); nobody rewrites the file on
//! the hot path, so concurrent campaigns merge instead of clobbering.
//!
//! **Replay invariant.** Loading replays every line of every shard in
//! file order; for a repeated key the *last* line wins. Keys are
//! injective over their row's identity ([`crate::CandidateSpec::label`]
//! for outcomes, the probe schema for probes), so last-writer-wins can
//! only ever replace a row with a row of the same identity — duplicate
//! appends from overlapping campaigns are absorbed, not corrupting. A
//! line that does not parse as JSON is a *torn* append from a writer
//! killed mid-`write` — it is counted and skipped, never an error, and
//! the next appender starts on a fresh line (see [`append_lines`]), so
//! one crash cannot poison a shard. A line that parses but has the wrong
//! shape is real corruption and is a loud error.

use super::lock::ShardLock;
use crate::campaign::CandidateOutcome;
use raptor_core::Json;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Shards per scenario directory. Small on purpose: shards bound lock
/// contention (concurrent appenders to one scenario collide only
/// 1/N_SHARDS of the time), not capacity.
pub(crate) const N_SHARDS: usize = 4;

/// FNV-1a 64-bit — the content address of a row key.
pub(crate) fn fnv1a64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The home shard of a key.
pub(crate) fn shard_of(key: &str) -> usize {
    (fnv1a64(key) % N_SHARDS as u64) as usize
}

/// The scenario component of a row key (everything before the first
/// `|`). Scenario names never contain `|` — the registry owns them.
pub(crate) fn scenario_of(key: &str) -> &str {
    key.split('|').next().unwrap_or(key)
}

/// Directory name of a scenario: `/` becomes `__` so `hydro/sod` maps to
/// one path component. The mapping need not be injective for
/// correctness — rows carry their full keys, so co-located scenarios
/// could never corrupt each other — it only partitions files for humans
/// and locks.
pub(crate) fn dir_name(scenario: &str) -> String {
    scenario.replace('/', "__")
}

fn shard_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard{shard}.jsonl"))
}

fn lock_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard{shard}.lock"))
}

/// One replayable row of a shard file.
#[derive(Clone, Debug, PartialEq)]
pub(crate) enum Row {
    /// A candidate outcome (`t: "outcome"`).
    Outcome { key: String, outcome: Box<CandidateOutcome> },
    /// A campaign's baseline self-fidelity (`t: "baseline"`).
    Baseline { key: String, fidelity: f64 },
    /// A bisection probe result (`t: "probe"`).
    Probe { key: String, fidelity: f64, truncated_fraction: f64 },
}

impl Row {
    pub(crate) fn key(&self) -> &str {
        match self {
            Row::Outcome { key, .. } | Row::Baseline { key, .. } | Row::Probe { key, .. } => key,
        }
    }

    /// One compact JSON line (no interior newlines — the framing is the
    /// newline).
    pub(crate) fn to_line(&self) -> String {
        let doc = match self {
            Row::Outcome { key, outcome } => Json::obj()
                .set("k", key.as_str())
                .set("t", "outcome")
                .set("o", outcome.to_json()),
            Row::Baseline { key, fidelity } => Json::obj()
                .set("k", key.as_str())
                .set("t", "baseline")
                .set("fidelity", Json::from_f64_lossless(*fidelity)),
            Row::Probe { key, fidelity, truncated_fraction } => Json::obj()
                .set("k", key.as_str())
                .set("t", "probe")
                .set("fidelity", Json::from_f64_lossless(*fidelity))
                .set("truncated_fraction", Json::from_f64_lossless(*truncated_fraction)),
        };
        doc.render_compact()
    }

    /// Parse one shard line. A schema mismatch here is corruption (the
    /// line parsed as JSON, so it was not torn) and is an error.
    pub(crate) fn from_json(doc: &Json) -> Result<Row, String> {
        let key = doc.str_field("k")?.to_string();
        match doc.str_field("t")? {
            "outcome" => Ok(Row::Outcome {
                key,
                outcome: Box::new(CandidateOutcome::from_json(doc.req("o")?)?),
            }),
            "baseline" => Ok(Row::Baseline { key, fidelity: doc.f64_field_lossless("fidelity")? }),
            "probe" => Ok(Row::Probe {
                key,
                fidelity: doc.f64_field_lossless("fidelity")?,
                truncated_fraction: doc.f64_field_lossless("truncated_fraction")?,
            }),
            other => Err(format!("unknown cache row type `{other}`")),
        }
    }
}

/// The replay of one shard file: its rows in append order, plus how many
/// torn lines were absorbed.
pub(crate) struct Replay {
    pub(crate) rows: Vec<Row>,
    pub(crate) recovered: usize,
}

fn parse_lines(text: &str, path: &Path) -> Result<Replay, String> {
    let mut rows = Vec::new();
    let mut recovered = 0usize;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match Json::parse(line) {
            // Unparseable = a torn append from a killed writer (a strict
            // prefix of a JSON object never balances its braces): absorb.
            Err(_) => recovered += 1,
            Ok(doc) => rows
                .push(Row::from_json(&doc).map_err(|e| format!("{}: {e}", path.display()))?),
        }
    }
    Ok(Replay { rows, recovered })
}

fn replay_file(path: &Path) -> Result<Replay, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Replay { rows: Vec::new(), recovered: 0 })
        }
        Err(e) => return Err(format!("read {}: {e}", path.display())),
    };
    parse_lines(&text, path)
}

/// Replay one shard under its lock — a consistent snapshot even while
/// appenders are live (an in-flight append either committed before we
/// took the lock or starts after we release it).
pub(crate) fn read_shard(dir: &Path, shard: usize) -> Result<Replay, String> {
    if !shard_path(dir, shard).exists() {
        // No file, nothing to lock against; don't create lock files in
        // directories we are only reading.
        return Ok(Replay { rows: Vec::new(), recovered: 0 });
    }
    let _lock = ShardLock::acquire(&lock_path(dir, shard))?;
    replay_file(&shard_path(dir, shard))
}

/// Append pre-rendered row lines to a shard under its lock.
///
/// If the file does not end in a newline — the signature of a writer
/// killed mid-append — a newline is prepended first, so the torn
/// fragment stays its own (absorbable) line instead of gluing onto our
/// first row. This is how a single append *repairs* a crashed shard:
/// the debris is quarantined immediately and dropped for good at the
/// next compaction.
pub(crate) fn append_lines(dir: &Path, shard: usize, lines: &[String]) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let _lock = ShardLock::acquire(&lock_path(dir, shard))?;
    let path = shard_path(dir, shard);
    let needs_newline = match std::fs::File::open(&path) {
        Ok(mut f) => {
            let len = f.metadata().map_err(|e| format!("stat {}: {e}", path.display()))?.len();
            if len == 0 {
                false
            } else {
                f.seek(SeekFrom::End(-1))
                    .map_err(|e| format!("seek {}: {e}", path.display()))?;
                let mut last = [0u8; 1];
                f.read_exact(&mut last)
                    .map_err(|e| format!("read {}: {e}", path.display()))?;
                last[0] != b'\n'
            }
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => false,
        Err(e) => return Err(format!("open {}: {e}", path.display())),
    };
    let mut buf = String::new();
    if needs_newline {
        buf.push('\n');
    }
    for line in lines {
        debug_assert!(!line.contains('\n'), "rows are single lines");
        buf.push_str(line);
        buf.push('\n');
    }
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| format!("append-open {}: {e}", path.display()))?;
    file.write_all(buf.as_bytes()).map_err(|e| format!("append {}: {e}", path.display()))
}

/// Rewrite one shard under its lock: replay the current file, let
/// `produce` turn that replay into the new line set (adopting any rows
/// a concurrent writer appended since the caller last loaded), and
/// replace the file atomically (unique temp + rename, the same
/// discipline as the retired whole-file save). The lock is held across
/// replay *and* rename, so no append can slip between what `produce`
/// saw and what the rename installs.
pub(crate) fn rewrite_shard(
    dir: &Path,
    shard: usize,
    produce: &mut dyn FnMut(Replay) -> Vec<String>,
) -> Result<(), String> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static REWRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
    let _lock = ShardLock::acquire(&lock_path(dir, shard))?;
    let path = shard_path(dir, shard);
    let lines = produce(replay_file(&path)?);
    let seq = REWRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    let tmp = dir.join(format!("shard{shard}.jsonl.tmp.{}.{seq}", std::process::id()));
    let mut text = String::new();
    for line in &lines {
        text.push_str(line);
        text.push('\n');
    }
    std::fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        format!("rename {} -> {}: {e}", tmp.display(), path.display())
    })
}

/// Best-effort removal of compaction temps orphaned by a crashed
/// rewriter, swept per scenario directory on load. Temp names are
/// `shardK.jsonl.tmp.<pid>.<seq>`; anything younger than `older_than`
/// might be a live rewrite's in-flight temp (file age stays meaningful
/// across PID namespaces and shared filesystems, unlike pid liveness)
/// and is left alone.
pub(crate) fn sweep_stale_temps(dir: &Path, older_than: std::time::Duration) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((_, rest)) = name.split_once(".jsonl.tmp.") else { continue };
        let Some((pid, seq)) = rest.split_once('.') else { continue };
        if pid.parse::<u32>().is_err() || seq.parse::<u64>().is_err() {
            continue;
        }
        let stale = entry
            .metadata()
            .and_then(|m| m.modified())
            .ok()
            .and_then(|mtime| std::time::SystemTime::now().duration_since(mtime).ok())
            .is_some_and(|age| age >= older_than);
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}
