//! Per-shard advisory file locks.
//!
//! Every mutation of a shard file — appending rows, or rewriting it
//! during compaction — happens under an OS advisory lock
//! ([`std::fs::File::lock`], i.e. `flock` on Unix) on a dedicated
//! `shardK.lock` sibling. The lock file is separate from the data file
//! on purpose: compaction replaces the data file by rename, and a lock
//! held on the *old* inode would not exclude a writer that opened the
//! *new* one. The lock sibling is never renamed, so its inode is the
//! stable rendezvous point for every process touching the shard.
//!
//! Because the lock is advisory and owned by the kernel, a writer killed
//! mid-append releases it automatically — no stale-lock breaking, no pid
//! liveness probing. (What a killed writer *can* leave behind is a torn
//! last line in the data file; the replay layer absorbs that — see the
//! [`super::shard`] docs.)
//!
//! **Lock order:** at most one shard lock is ever held at a time, by
//! construction — [`super::shard::append_lines`] and
//! [`super::shard::rewrite_shard`] each acquire one lock and release it
//! before returning, and nothing in the cache layer nests them. One lock
//! at a time means no lock-order cycles and therefore no deadlocks, no
//! matter how many processes share the cache directory.

use std::fs::OpenOptions;
use std::path::Path;

/// A held advisory lock on one shard. Released on drop (and by the OS if
/// the process dies first).
pub(crate) struct ShardLock {
    file: std::fs::File,
}

impl ShardLock {
    /// Block until the shard lock at `lock_path` is exclusively held.
    /// Creates the lock file if missing (its *contents* are irrelevant —
    /// only the kernel lock on it matters).
    pub(crate) fn acquire(lock_path: &Path) -> Result<ShardLock, String> {
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(lock_path)
            .map_err(|e| format!("open lock {}: {e}", lock_path.display()))?;
        file.lock().map_err(|e| format!("lock {}: {e}", lock_path.display()))?;
        Ok(ShardLock { file })
    }
}

impl Drop for ShardLock {
    fn drop(&mut self) {
        // Best-effort: closing the file releases the lock anyway.
        let _ = self.file.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn lock_excludes_concurrent_holders() {
        let dir = std::env::temp_dir()
            .join(format!("raptor-lock-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard0.lock");
        // A counter only ever incremented under the lock: if exclusion
        // failed, two threads could observe the same pre-value and the
        // final count would fall short.
        static IN_CRIT: AtomicUsize = AtomicUsize::new(0);
        let total = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let path = &path;
                    s.spawn(move || {
                        let mut done = 0;
                        for _ in 0..25 {
                            let _g = ShardLock::acquire(path).unwrap();
                            let now = IN_CRIT.fetch_add(1, Ordering::SeqCst) + 1;
                            assert_eq!(now, 1, "two holders inside the critical section");
                            std::thread::yield_now();
                            IN_CRIT.fetch_sub(1, Ordering::SeqCst);
                            done += 1;
                        }
                        done
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
        });
        assert_eq!(total, 100);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
