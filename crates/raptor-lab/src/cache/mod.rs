//! The campaign resume cache: a content-addressed, sharded, multi-process
//! outcome database on disk.
//!
//! A cache is a *directory* (`--cache`/`--resume` paths name dirs now).
//! Inside it, every scenario owns a subdirectory of `shard::N_SHARDS`
//! append-only JSONL files plus their lock siblings:
//!
//! ```text
//! cache_dir/hydro__sod/shard2.jsonl   <- rows whose fnv1a64(key)%4 == 2
//! cache_dir/hydro__sod/shard2.lock    <- advisory lock for that file
//! ```
//!
//! Three row kinds share one key space, all rooted at the campaign key
//! `{scenario}|scale{S}|threads{T}`:
//!
//! - **outcome**:  `{campaign}|{CandidateSpec::label()}` — one candidate row
//! - **baseline**: `{campaign}` — the reference self-fidelity
//! - **probe**:    `{campaign}|probe e{E}m{M} M-{C}` — one bisection point
//!
//! The namespaces are disjoint by shape (a bare campaign key has no
//! label segment; candidate labels never begin with `probe `), and each
//! key is injective over its row's full identity, so last-writer-wins
//! replay can only ever replace a row with an equal-identity row.
//!
//! **Write model.** Mutators ([`OutcomeCache::insert`],
//! [`OutcomeCache::set_baseline`], [`OutcomeCache::insert_probe`]) stage
//! rows in memory; [`OutcomeCache::save`] *appends* them to their home
//! shards under per-shard locks — no whole-file rewrite, so concurrent
//! campaigns, hunts, and studies from any number of processes merge
//! instead of clobbering. Staging is idempotent: re-recording a row the
//! map already holds with the same value stages nothing, so warm resumes
//! do not bloat shards. Eviction ([`OutcomeCache::evict_half`]) is the
//! one rewriting operation: it tombstones keys and the next
//! [`OutcomeCache::save`] compacts the touched shards (adopting any rows
//! concurrent writers appended meanwhile — see
//! `shard::rewrite_shard`).
//!
//! **Migration.** `load` on a legacy single-file cache renames the file
//! to a `.legacy-v1` sibling, creates the directory in its place,
//! absorbs the sibling's rows, appends them durably, and only then
//! deletes the sibling — every crash point redoes cleanly on the next
//! load, and a cache shared by old and new binaries fails loudly (the
//! old binary refuses the directory) rather than silently forking.

mod legacy;
mod lock;
mod shard;

use crate::campaign::{CandidateOutcome, CandidateSpec};
use crate::scenario::LabParams;
use shard::{Row, N_SHARDS};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// What a resumable campaign did: how many candidate rows came from the
/// cache and how many had to be (re)computed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResumeStats {
    /// Rows served from the cache without running the scenario.
    pub cached: usize,
    /// Rows computed in this invocation (and written back to the cache).
    pub computed: usize,
}

/// A mergeable, resumable outcome table persisted as a sharded cache
/// directory.
#[derive(Debug)]
pub struct OutcomeCache {
    path: PathBuf,
    entries: BTreeMap<String, CandidateOutcome>,
    baselines: BTreeMap<String, f64>,
    probes: BTreeMap<String, (f64, f64)>,
    /// Rows staged since the last save, appended (not rewritten) on save.
    pending: Vec<Row>,
    /// Keys evicted since the last compaction; their shards need a
    /// rewrite before the eviction is durable.
    tombstones: BTreeSet<String>,
    needs_compact: bool,
    /// Torn lines absorbed by the last load (see module docs).
    recovered: usize,
}

fn campaign_key(scenario: &str, params: &LabParams) -> String {
    format!("{scenario}|scale{}|threads{}", params.scale, params.threads)
}

fn probe_key(scenario: &str, params: &LabParams, exp_bits: u32, cutoff: u32, m: u32) -> String {
    format!("{}|probe e{exp_bits}m{m} M-{cutoff}", campaign_key(scenario, params))
}

impl OutcomeCache {
    /// Open (and fully replay) the cache directory at `path`; a missing
    /// path yields an empty cache that [`OutcomeCache::save`] will
    /// create. A legacy single-file cache at `path` is migrated in place
    /// (see module docs). Torn shard lines are absorbed and counted
    /// ([`OutcomeCache::recovered`]); a *parseable* row with a bad shape
    /// is an error — silently discarding completed work would be worse.
    pub fn load(path: impl Into<PathBuf>) -> Result<OutcomeCache, String> {
        let path = path.into();
        if path.is_file() {
            // Migration step 1: park the legacy file as a sibling so the
            // directory can take its name. Absorption below is keyed off
            // the sibling's existence, so a crash after this rename
            // simply redoes the remaining steps next load.
            let sibling = legacy::legacy_sibling(&path);
            std::fs::rename(&path, &sibling)
                .map_err(|e| format!("migrate {}: {e}", path.display()))?;
        }
        let mut cache = OutcomeCache {
            path,
            entries: BTreeMap::new(),
            baselines: BTreeMap::new(),
            probes: BTreeMap::new(),
            pending: Vec::new(),
            tombstones: BTreeSet::new(),
            needs_compact: false,
            recovered: 0,
        };
        if cache.path.is_dir() {
            let entries = std::fs::read_dir(&cache.path)
                .map_err(|e| format!("read dir {}: {e}", cache.path.display()))?;
            let mut dirs: Vec<PathBuf> =
                entries.flatten().map(|e| e.path()).filter(|p| p.is_dir()).collect();
            dirs.sort();
            for dir in dirs {
                shard::sweep_stale_temps(&dir, STALE_TEMP_AGE);
                for s in 0..N_SHARDS {
                    let replay = shard::read_shard(&dir, s)?;
                    cache.recovered += replay.recovered;
                    for row in replay.rows {
                        cache.apply(row);
                    }
                }
            }
        }
        let sibling = legacy::legacy_sibling(&cache.path);
        if sibling.is_file() {
            // Migration steps 2..4: absorb, persist, then delete. Rows
            // already present in the directory (a previous partial
            // migration) stage nothing thanks to idempotent insertion.
            let text = std::fs::read_to_string(&sibling)
                .map_err(|e| format!("read {}: {e}", sibling.display()))?;
            let old = legacy::parse(&text, &sibling)?;
            let (n_entries, n_baselines) = (old.entries.len(), old.baselines.len());
            for (key, outcome) in old.entries {
                cache.stage(Row::Outcome { key, outcome: Box::new(outcome) });
            }
            for (key, fidelity) in old.baselines {
                cache.stage(Row::Baseline { key, fidelity });
            }
            cache.save()?;
            std::fs::remove_file(&sibling)
                .map_err(|e| format!("remove {}: {e}", sibling.display()))?;
            eprintln!(
                "cache: migrated legacy file into {} ({n_entries} outcomes, {n_baselines} baselines)",
                cache.path.display()
            );
        }
        if cache.recovered > 0 {
            eprintln!(
                "cache: absorbed {} torn line(s) in {} (crashed writer debris; dropped at next compaction)",
                cache.recovered,
                cache.path.display()
            );
        }
        Ok(cache)
    }

    /// Replay one row into the in-memory maps (last writer wins).
    fn apply(&mut self, row: Row) {
        match row {
            Row::Outcome { key, outcome } => {
                self.entries.insert(key, *outcome);
            }
            Row::Baseline { key, fidelity } => {
                self.baselines.insert(key, fidelity);
            }
            Row::Probe { key, fidelity, truncated_fraction } => {
                self.probes.insert(key, (fidelity, truncated_fraction));
            }
        }
    }

    /// Apply a row and stage it for append — unless the maps already
    /// hold exactly this value, in which case the row is already durable
    /// (or already staged) and appending again would only bloat the
    /// shard on every warm resume.
    fn stage(&mut self, row: Row) {
        let fresh = match &row {
            Row::Outcome { key, outcome } => self.entries.get(key) != Some(&**outcome),
            Row::Baseline { key, fidelity } => {
                self.baselines.get(key).map(|f| f.to_bits()) != Some(fidelity.to_bits())
            }
            Row::Probe { key, fidelity, truncated_fraction } => {
                self.probes.get(key).map(|(f, t)| (f.to_bits(), t.to_bits()))
                    != Some((fidelity.to_bits(), truncated_fraction.to_bits()))
            }
        };
        if fresh {
            self.tombstones.remove(row.key());
            self.apply(row.clone());
            self.pending.push(row);
        }
    }

    /// Where this cache persists (the cache directory).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of cached candidate rows (across all campaigns).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no candidate rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of cached bisection probes (across all hunts).
    pub fn probes_len(&self) -> usize {
        self.probes.len()
    }

    /// Torn lines absorbed by [`OutcomeCache::load`] — nonzero means a
    /// writer died mid-append since the last compaction.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// The cached outcome of one candidate, if present.
    pub fn get(
        &self,
        scenario: &str,
        params: &LabParams,
        spec: &CandidateSpec,
    ) -> Option<&CandidateOutcome> {
        self.entries.get(&format!("{}|{}", campaign_key(scenario, params), spec.label()))
    }

    /// Record (or refresh) one candidate outcome.
    pub fn insert(&mut self, scenario: &str, params: &LabParams, outcome: &CandidateOutcome) {
        let key = format!("{}|{}", campaign_key(scenario, params), outcome.spec.label());
        self.stage(Row::Outcome { key, outcome: Box::new(outcome.clone()) });
    }

    /// The cached baseline self-fidelity of a campaign, if recorded.
    pub fn baseline(&self, scenario: &str, params: &LabParams) -> Option<f64> {
        self.baselines.get(&campaign_key(scenario, params)).copied()
    }

    /// Record a campaign's baseline self-fidelity, so a fully-warm resume
    /// does not need to re-run even the reference.
    pub fn set_baseline(&mut self, scenario: &str, params: &LabParams, fidelity: f64) {
        self.stage(Row::Baseline { key: campaign_key(scenario, params), fidelity });
    }

    /// The cached `(fidelity, truncated_fraction)` of one bisection
    /// probe, if present. Probes are deterministic
    /// `(scenario, scale, threads, exp_bits, cutoff, m)` points, so a
    /// hit is exact — no tolerance, no staleness.
    pub fn get_probe(
        &self,
        scenario: &str,
        params: &LabParams,
        exp_bits: u32,
        cutoff: u32,
        m: u32,
    ) -> Option<(f64, f64)> {
        self.probes.get(&probe_key(scenario, params, exp_bits, cutoff, m)).copied()
    }

    /// Record one bisection probe result.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_probe(
        &mut self,
        scenario: &str,
        params: &LabParams,
        exp_bits: u32,
        cutoff: u32,
        m: u32,
        fidelity: f64,
        truncated_fraction: f64,
    ) {
        self.stage(Row::Probe {
            key: probe_key(scenario, params, exp_bits, cutoff, m),
            fidelity,
            truncated_fraction,
        });
    }

    /// Drop every other candidate row (keeping the first, third, ... in
    /// global key order) — the resume drill used by CI: run, evict half,
    /// re-run, and assert only the evicted half recomputes. The eviction
    /// becomes durable at the next [`OutcomeCache::save`], which
    /// compacts the touched shards.
    pub fn evict_half(&mut self) {
        let keys: Vec<String> = self.entries.keys().cloned().collect();
        for key in keys.iter().skip(1).step_by(2) {
            self.entries.remove(key);
            self.tombstones.insert(key.clone());
        }
        // Evicted rows may still sit in `pending`; compaction rewrites
        // from the maps, so route the next save through it.
        self.needs_compact = true;
    }

    /// Persist staged rows. The hot path is pure append under per-shard
    /// locks; after an eviction it is a compacting rewrite instead (see
    /// module docs).
    pub fn save(&mut self) -> Result<(), String> {
        std::fs::create_dir_all(&self.path)
            .map_err(|e| format!("mkdir {}: {e}", self.path.display()))?;
        if self.needs_compact {
            return self.compact();
        }
        // Group staged rows by home (scenario dir, shard): one lock
        // acquisition and one write per touched shard.
        let mut by_shard: BTreeMap<(String, usize), Vec<String>> = BTreeMap::new();
        for row in &self.pending {
            let dir = shard::dir_name(shard::scenario_of(row.key()));
            by_shard.entry((dir, shard::shard_of(row.key()))).or_default().push(row.to_line());
        }
        for ((dir, s), lines) in &by_shard {
            shard::append_lines(&self.path.join(dir), *s, lines)?;
        }
        self.pending.clear();
        Ok(())
    }

    /// Rewrite every shard this cache has rows or tombstones in:
    /// replay each file under its lock, adopt rows concurrent writers
    /// appended since our load (unless we tombstoned them), and write
    /// back one line per live row, key-sorted. Drops absorbed torn
    /// lines, duplicate appends, and evicted rows for good.
    pub fn compact(&mut self) -> Result<(), String> {
        std::fs::create_dir_all(&self.path)
            .map_err(|e| format!("mkdir {}: {e}", self.path.display()))?;
        // Split the borrows: the rewrite closure mutates the maps while
        // the loop below iterates an independently-computed dir list.
        let OutcomeCache { path, entries, baselines, probes, tombstones, .. } = self;
        let mut dirs: BTreeSet<String> = BTreeSet::new();
        for key in entries
            .keys()
            .chain(baselines.keys())
            .chain(probes.keys())
            .chain(tombstones.iter())
        {
            dirs.insert(shard::dir_name(shard::scenario_of(key)));
        }
        for dir in &dirs {
            let dir_path = path.join(dir);
            for s in 0..N_SHARDS {
                shard::rewrite_shard(&dir_path, s, &mut |replay| {
                    for row in replay.rows {
                        if tombstones.contains(row.key()) {
                            continue;
                        }
                        // A row we don't hold was appended by a
                        // concurrent writer after our load: adopt it
                        // (our own value wins when both exist).
                        match row {
                            Row::Outcome { key, outcome } => {
                                entries.entry(key).or_insert(*outcome);
                            }
                            Row::Baseline { key, fidelity } => {
                                baselines.entry(key).or_insert(fidelity);
                            }
                            Row::Probe { key, fidelity, truncated_fraction } => {
                                probes.entry(key).or_insert((fidelity, truncated_fraction));
                            }
                        }
                    }
                    let home = |key: &str| {
                        shard::dir_name(shard::scenario_of(key)) == *dir
                            && shard::shard_of(key) == s
                    };
                    let mut lines = Vec::new();
                    for (key, outcome) in entries.iter() {
                        if home(key) {
                            lines.push(
                                Row::Outcome {
                                    key: key.clone(),
                                    outcome: Box::new(outcome.clone()),
                                }
                                .to_line(),
                            );
                        }
                    }
                    for (key, fidelity) in baselines.iter() {
                        if home(key) {
                            lines.push(
                                Row::Baseline { key: key.clone(), fidelity: *fidelity }.to_line(),
                            );
                        }
                    }
                    for (key, (fidelity, truncated_fraction)) in probes.iter() {
                        if home(key) {
                            lines.push(
                                Row::Probe {
                                    key: key.clone(),
                                    fidelity: *fidelity,
                                    truncated_fraction: *truncated_fraction,
                                }
                                .to_line(),
                            );
                        }
                    }
                    lines
                })?;
            }
        }
        self.pending.clear();
        self.tombstones.clear();
        self.needs_compact = false;
        self.recovered = 0;
        Ok(())
    }
}

/// A compaction temp older than this is considered orphaned by a crashed
/// rewriter. Rewrites hold their temp for milliseconds, so an hour
/// leaves a ~10^6× margin for a live in-flight temp — and unlike
/// checking pid liveness, file age stays meaningful across PID
/// namespaces and shared filesystems where a foreign writer's pid is
/// unknowable.
const STALE_TEMP_AGE: std::time::Duration = std::time::Duration::from_secs(3600);

#[cfg(test)]
mod tests {
    use super::*;
    use bigfloat::Format;
    use raptor_core::{Counters, Report};

    fn outcome(m: u32) -> CandidateOutcome {
        CandidateOutcome {
            spec: CandidateSpec::op(Format::new(11, m)),
            fidelity: 0.5 + m as f64 * 1e-3,
            accepted: true,
            predicted_speedup: 1.5,
            speedup_compute: 2.0,
            speedup_memory: 1.25,
            counters: Counters::default(),
            report: Report {
                config: format!("m={m}"),
                counters: Counters::default(),
                flags: Vec::new(),
                warnings: Vec::new(),
            },
            error: None,
        }
    }

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("raptor-cache-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let path = tmp_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&path);
        let params = LabParams::mini();
        let mut cache = OutcomeCache::load(&path).unwrap();
        assert!(cache.is_empty());
        cache.insert("hydro/sod", &params, &outcome(8));
        cache.insert("hydro/sod", &params, &outcome(23));
        cache.set_baseline("hydro/sod", &params, 1.0);
        cache.insert_probe("hydro/sod", &params, 11, 0, 24, 0.875, 0.25);
        cache.save().unwrap();

        let back = OutcomeCache::load(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.recovered(), 0);
        assert_eq!(back.baseline("hydro/sod", &params), Some(1.0));
        assert_eq!(back.get_probe("hydro/sod", &params, 11, 0, 24), Some((0.875, 0.25)));
        let spec = CandidateSpec::op(Format::new(11, 8));
        assert_eq!(back.get("hydro/sod", &params, &spec), Some(&outcome(8)));
        // Different params, scenario, or probe point miss.
        assert!(back.get("hydro/sod", &LabParams::demo(), &spec).is_none());
        assert!(back.get("hydro/sedov", &params, &spec).is_none());
        assert!(back.get_probe("hydro/sod", &params, 11, 1, 24).is_none());
        assert!(back.get_probe("hydro/sod", &params, 11, 0, 25).is_none());
        let _ = std::fs::remove_dir_all(&path);
    }

    #[test]
    fn warm_resume_stages_nothing() {
        let path = tmp_dir("idempotent");
        let _ = std::fs::remove_dir_all(&path);
        let params = LabParams::mini();
        let mut cache = OutcomeCache::load(&path).unwrap();
        cache.insert("s", &params, &outcome(8));
        cache.set_baseline("s", &params, 1.0);
        cache.insert_probe("s", &params, 11, 0, 24, 0.9, 0.1);
        cache.save().unwrap();

        // Re-recording identical rows (what every warm resume does)
        // must not grow the shard files.
        let sizes = |p: &Path| -> u64 {
            fn walk(p: &Path, acc: &mut u64) {
                for e in std::fs::read_dir(p).unwrap().flatten() {
                    let path = e.path();
                    if path.is_dir() {
                        walk(&path, acc);
                    } else if path.extension().is_some_and(|x| x == "jsonl") {
                        *acc += e.metadata().unwrap().len();
                    }
                }
            }
            let mut acc = 0;
            walk(p, &mut acc);
            acc
        };
        let before = sizes(&path);
        let mut back = OutcomeCache::load(&path).unwrap();
        back.insert("s", &params, &outcome(8));
        back.set_baseline("s", &params, 1.0);
        back.insert_probe("s", &params, 11, 0, 24, 0.9, 0.1);
        assert!(back.pending.is_empty(), "identical rows must not be re-staged");
        back.save().unwrap();
        assert_eq!(sizes(&path), before, "warm resume must not grow shards");
        // A *changed* row is re-staged (e.g. re-gating under a new floor).
        let mut changed = outcome(8);
        changed.accepted = false;
        back.insert("s", &params, &changed);
        assert_eq!(back.pending.len(), 1);
        let _ = std::fs::remove_dir_all(&path);
    }

    #[test]
    fn evict_half_drops_every_other_entry_durably() {
        let path = tmp_dir("evict");
        let _ = std::fs::remove_dir_all(&path);
        let mut cache = OutcomeCache::load(&path).unwrap();
        let params = LabParams::mini();
        for m in [4u32, 8, 12, 16, 20] {
            cache.insert("s", &params, &outcome(m));
        }
        cache.save().unwrap();
        cache.evict_half();
        assert_eq!(cache.len(), 3, "5 entries -> keep 3");
        cache.save().unwrap();
        let back = OutcomeCache::load(&path).unwrap();
        assert_eq!(back.len(), 3, "eviction survives reload");
        let mut again = back;
        again.evict_half();
        assert_eq!(again.len(), 2);
        let _ = std::fs::remove_dir_all(&path);
    }

    #[test]
    fn concurrent_appenders_merge_instead_of_clobbering() {
        // The PR-5 era whole-file save meant concurrent writers raced
        // renames: the last complete table won and every other writer's
        // rows were lost. Sharded appends under per-shard locks merge:
        // *all* rows survive, from any number of writers.
        let path = tmp_dir("concurrent");
        let _ = std::fs::remove_dir_all(&path);
        let params = LabParams::mini();
        let writers = 8usize;
        std::thread::scope(|s| {
            for w in 0..writers {
                let path = &path;
                s.spawn(move || {
                    let mut cache = OutcomeCache::load(path).unwrap();
                    // Disjoint rows per writer, all in one scenario so
                    // they contend for the same shard files.
                    cache.insert("race", &params, &outcome(2 + w as u32));
                    cache.insert_probe("race", &params, 11, 0, 2 + w as u32, 0.5, 0.5);
                    for _ in 0..10 {
                        cache.save().expect("concurrent save succeeds");
                    }
                });
            }
        });
        let back = OutcomeCache::load(&path).unwrap();
        assert_eq!(back.len(), writers, "no writer's outcomes were lost");
        assert_eq!(back.probes_len(), writers, "no writer's probes were lost");
        assert_eq!(back.recovered(), 0);
        let _ = std::fs::remove_dir_all(&path);
    }

    #[test]
    fn load_sweeps_old_temps_per_scenario_dir() {
        let path = tmp_dir("sweep");
        let _ = std::fs::remove_dir_all(&path);
        let params = LabParams::mini();
        let mut cache = OutcomeCache::load(&path).unwrap();
        cache.insert("s", &params, &outcome(8));
        cache.save().unwrap();
        let sdir = path.join("s");
        let temp = sdir.join("shard0.jsonl.tmp.123.3");
        let odd = sdir.join("shard0.jsonl.tmp.notapid.1");
        std::fs::write(&temp, "{}").unwrap();
        std::fs::write(&odd, "{}").unwrap();
        // A freshly-written temp might belong to a live in-flight
        // rewrite: the hour-threshold sweep `load` runs leaves it alone.
        let _ = OutcomeCache::load(&path).unwrap();
        assert!(temp.exists(), "fresh temp untouched by load");
        // At age >= 0 the same temp is sweepable; siblings that merely
        // share the prefix shape are never candidates.
        shard::sweep_stale_temps(&sdir, std::time::Duration::ZERO);
        assert!(!temp.exists(), "aged-out temp swept");
        assert!(odd.exists(), "non-temp-shaped sibling untouched");
        let _ = std::fs::remove_dir_all(&path);
    }

    #[test]
    fn parseable_but_malformed_row_is_an_error_not_a_silent_reset() {
        let path = tmp_dir("corrupt");
        let _ = std::fs::remove_dir_all(&path);
        let sdir = path.join("s");
        std::fs::create_dir_all(&sdir).unwrap();
        // Valid JSON, wrong shape: this was not a torn append, so it is
        // real corruption and must fail loudly.
        std::fs::write(sdir.join("shard0.jsonl"), "{\"k\":\"x\",\"t\":\"mystery\"}\n").unwrap();
        assert!(OutcomeCache::load(&path).is_err());
        let _ = std::fs::remove_dir_all(&path);
    }

    #[test]
    fn legacy_file_migrates_once_and_loses_nothing() {
        let path = tmp_dir("migrate");
        let _ = std::fs::remove_dir_all(&path);
        let _ = std::fs::remove_file(&path);
        let params = LabParams::mini();
        // Fabricate a legacy single-file cache through its own format.
        let legacy_doc = raptor_core::Json::obj()
            .set("version", 1u32)
            .set(
                "baselines",
                raptor_core::Json::Arr(vec![raptor_core::Json::obj()
                    .set("key", "s|scale0|threads1")
                    .set("fidelity", 1.0)]),
            )
            .set(
                "entries",
                raptor_core::Json::Arr(vec![raptor_core::Json::obj()
                    .set("key", format!("s|scale0|threads1|{}", outcome(8).spec.label()).as_str())
                    .set("outcome", outcome(8).to_json())]),
            );
        std::fs::write(&path, legacy_doc.render()).unwrap();

        let cache = OutcomeCache::load(&path).unwrap();
        assert!(path.is_dir(), "file replaced by a directory");
        assert!(!legacy::legacy_sibling(&path).exists(), "sibling consumed");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.baseline("s", &params), Some(1.0));
        let spec = CandidateSpec::op(Format::new(11, 8));
        assert_eq!(cache.get("s", &params, &spec), Some(&outcome(8)));
        // Second load: already a directory, nothing left to migrate.
        let back = OutcomeCache::load(&path).unwrap();
        assert_eq!(back.len(), 1);
        let _ = std::fs::remove_dir_all(&path);
    }
}
