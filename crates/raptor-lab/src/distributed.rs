//! Distributed campaigns: the precision-sweep lattice sharded across
//! [`minimpi`] ranks.
//!
//! [`run_campaign_distributed`] is the cluster-shaped twin of
//! [`crate::run_campaign`]:
//!
//! 1. the candidate lattice is **block-partitioned by candidate index**
//!    (rank `r` of `R` owns `[r·n/R, (r+1)·n/R)` — contiguous, and off by
//!    at most one candidate between ranks, so lattices that do not divide
//!    evenly still balance);
//! 2. rank 0 runs the full-precision baseline once and broadcasts the
//!    observable **bit-exactly** (raw `f64` bit patterns, not JSON);
//! 3. each rank sweeps its shard through the existing fidelity-gated
//!    `run_candidate` path on its **own**
//!    [`amr::Pool`], sized `workers / nranks`, so shards run concurrently
//!    instead of serializing on the process-wide pool;
//! 4. per-candidate [`CandidateOutcome`] rows travel to rank 0 as
//!    [`minimpi::Wire`] messages (JSON documents whose finite `f64`
//!    fields round-trip exactly) and are reassembled **in candidate
//!    lattice order**, so the stable ranking sort produces a merged
//!    [`CampaignReport`] content-identical to the single-rank sweep.
//!
//! [`precision_search_distributed`] fans the greedy bisection out the
//! same way: each M-l cutoff row (a chain of bisection probes) is a shard
//! item, and gathered [`SearchRow`]s come back in cutoff order.
//!
//! Resume layers on top ([`run_campaign_distributed_resumable`]): rows
//! already present in an [`OutcomeCache`] are not re-run — only missing
//! candidates are sharded across ranks — and freshly computed rows are
//! written back, so an interrupted sweep restarts warm. A fully-warm
//! resume runs **zero** scenarios (the baseline self-fidelity is cached
//! too). Cached `accepted` verdicts are re-gated against the live
//! fidelity floor at merge time.

use crate::cache::{OutcomeCache, ResumeStats};
use crate::campaign::{
    eligible_candidates, regate_and_rank, run_candidate, search_row, CampaignReport, CampaignSpec,
    CandidateOutcome, CandidateSpec, SearchRow, SearchSpec,
};
use crate::scenario::{Observable, Scenario};
use minimpi::{Json, Wire};
use raptor_core::Session;
use std::sync::Mutex;

/// Tag for the baseline-observable broadcast.
const TAG_BASELINE: u64 = 0xBA5E;
/// Tag for the outcome-shard gather.
const TAG_OUTCOMES: u64 = 0x0C0E;
/// Tag for the search-row gather.
const TAG_ROWS: u64 = 0x5EA7;

impl Wire for CandidateOutcome {
    fn to_wire(&self) -> Json {
        self.to_json()
    }

    fn from_wire(doc: &Json) -> Result<CandidateOutcome, String> {
        CandidateOutcome::from_json(doc)
    }
}

impl Wire for SearchRow {
    fn to_wire(&self) -> Json {
        self.to_json()
    }

    fn from_wire(doc: &Json) -> Result<SearchRow, String> {
        SearchRow::from_json(doc)
    }
}

/// One rank's shard of outcome rows, travelling as a JSON array.
struct Shard<T>(Vec<T>);

impl<T: Wire> Wire for Shard<T> {
    fn to_wire(&self) -> Json {
        Json::Arr(self.0.iter().map(|o| o.to_wire()).collect())
    }

    fn from_wire(doc: &Json) -> Result<Shard<T>, String> {
        doc.as_arr()
            .ok_or_else(|| "shard is not an array".to_string())?
            .iter()
            .map(T::from_wire)
            .collect::<Result<Vec<T>, String>>()
            .map(Shard)
    }
}

/// The static block partition: rank `rank` of `nranks` owns
/// `[rank·n/nranks, (rank+1)·n/nranks)`. Contiguous, covers `0..n`
/// exactly once, and shard sizes differ by at most one, so remainders
/// (e.g. 7 candidates on 2 or 3 ranks) spread evenly.
pub fn block_range(n: usize, nranks: usize, rank: usize) -> (usize, usize) {
    (rank * n / nranks, (rank + 1) * n / nranks)
}

/// Run a campaign sharded across `nranks` minimpi ranks and return the
/// merged, deterministically-ordered report — content-identical to
/// [`crate::run_campaign`] on the same scenario and spec (same labels,
/// fidelities, predicted speedups, and ranking, for any rank count).
pub fn run_campaign_distributed(
    scenario: &dyn Scenario,
    spec: &CampaignSpec,
    nranks: usize,
) -> CampaignReport {
    run_campaign_distributed_resumable(scenario, spec, nranks, None).0
}

/// [`run_campaign_distributed`] with campaign resume: candidates already
/// in `cache` are served from it (zero re-runs for a completed campaign);
/// only missing candidates are sharded across ranks, and every row of the
/// merged report is written back to the cache. The caller persists the
/// cache with [`OutcomeCache::save`] when it wants durability.
pub fn run_campaign_distributed_resumable(
    scenario: &dyn Scenario,
    spec: &CampaignSpec,
    nranks: usize,
    cache: Option<&mut OutcomeCache>,
) -> (CampaignReport, ResumeStats) {
    let nranks = nranks.max(1);
    let max_level = scenario.max_level(&spec.params);
    let candidates = eligible_candidates(spec, max_level);
    let mut cached: Vec<Option<CandidateOutcome>> = candidates
        .iter()
        .map(|c| {
            cache.as_deref().and_then(|k| k.get(scenario.name(), &spec.params, c).cloned())
        })
        .collect();
    let missing: Vec<CandidateSpec> = candidates
        .iter()
        .zip(&cached)
        .filter(|(_, hit)| hit.is_none())
        .map(|(c, _)| (*c).clone())
        .collect();
    let stats =
        ResumeStats { cached: candidates.len() - missing.len(), computed: missing.len() };

    let (baseline_fidelity, computed): (f64, Vec<CandidateOutcome>) = if missing.is_empty() {
        // Fully warm: nothing to run — not even the baseline (its
        // self-fidelity is cached alongside the rows; 1.0 by construction
        // if this cache predates baseline recording).
        let bf = cache
            .as_deref()
            .and_then(|k| k.baseline(scenario.name(), &spec.params))
            .unwrap_or(1.0);
        (bf, Vec::new())
    } else {
        let rank_workers = (spec.workers / nranks).max(1);
        let missing_ref = &missing;
        let mut results = minimpi::run(nranks, |comm| -> Option<(f64, Vec<CandidateOutcome>)> {
            // Rank 0 owns the full-precision baseline; every rank scores
            // its shard against the exact same bits.
            let (bf, baseline) = if comm.rank() == 0 {
                let obs = scenario.build(&spec.params).run(&Session::passthrough());
                let bf = scenario.fidelity(&obs, &obs);
                let values = comm.broadcast(0, TAG_BASELINE, &obs.values);
                (bf, Observable { values })
            } else {
                (1.0, Observable { values: comm.broadcast(0, TAG_BASELINE, &[]) })
            };
            let (lo, hi) = block_range(missing_ref.len(), comm.size(), comm.rank());
            let block = &missing_ref[lo..hi];
            // Each rank owns a right-sized pool: shards sweep concurrently
            // instead of queueing on the process-wide submit lock.
            let pool = amr::Pool::new();
            let slots: Vec<Mutex<Option<CandidateOutcome>>> =
                block.iter().map(|_| Mutex::new(None)).collect();
            pool.run(block.len(), rank_workers, &|i| {
                let outcome = run_candidate(scenario, spec, &block[i], max_level, &baseline);
                *slots[i].lock().unwrap() = Some(outcome);
            });
            let mine: Vec<CandidateOutcome> = slots
                .into_iter()
                .map(|s| s.into_inner().unwrap().expect("rank ran its whole shard"))
                .collect();
            // Gather shards to rank 0 in rank order == candidate order
            // (the partition is contiguous and ascending in rank).
            let gathered = comm
                .gather_wire(0, TAG_OUTCOMES, &Shard(mine))
                .expect("outcome rows round-trip the wire");
            gathered.map(|shards| {
                (bf, shards.into_iter().flat_map(|s| s.0).collect::<Vec<CandidateOutcome>>())
            })
        });
        results[0].take().expect("rank 0 gathered the merged table")
    };

    // Reassemble in candidate-lattice order — cached rows slot back in
    // where they came from — then re-gate and rank. The stable sort makes
    // the merged report bit-identical in content to the single-rank one.
    let mut fresh = computed.into_iter();
    let mut outcomes: Vec<CandidateOutcome> = cached
        .iter_mut()
        .map(|slot| match slot.take() {
            Some(o) => o,
            None => fresh.next().expect("every missing candidate was computed"),
        })
        .collect();
    debug_assert!(fresh.next().is_none(), "computed rows fully consumed");
    regate_and_rank(&mut outcomes, spec);

    if let Some(k) = cache {
        for o in &outcomes {
            k.insert(scenario.name(), &spec.params, o);
        }
        k.set_baseline(scenario.name(), &spec.params, baseline_fidelity);
    }

    let report = CampaignReport {
        scenario: scenario.name().to_string(),
        crate_name: scenario.crate_name().to_string(),
        params: spec.params,
        fidelity_floor: spec.fidelity_floor,
        baseline_fidelity,
        outcomes,
    };
    (report, stats)
}

/// Load the cache at `path`, run the campaign resumably across `nranks`
/// ranks, and persist the updated cache — the `--ranks N --resume <path>`
/// CLI flow as one call.
pub fn run_campaign_resumed(
    scenario: &dyn Scenario,
    spec: &CampaignSpec,
    nranks: usize,
    path: impl Into<std::path::PathBuf>,
) -> Result<(CampaignReport, ResumeStats), String> {
    let mut cache = OutcomeCache::load(path)?;
    let (report, stats) =
        run_campaign_distributed_resumable(scenario, spec, nranks, Some(&mut cache));
    cache.save()?;
    Ok((report, stats))
}

/// The distributed twin of [`crate::precision_search`]: the M-l cutoff
/// rows (each a chain of greedy bisection probes) are block-partitioned
/// across `nranks` minimpi ranks, bisected on per-rank pools against the
/// broadcast baseline, and gathered back to rank 0 in cutoff order —
/// row-for-row identical to the single-rank search.
pub fn precision_search_distributed(
    scenario: &dyn Scenario,
    spec: &SearchSpec,
    nranks: usize,
) -> Vec<SearchRow> {
    let nranks = nranks.max(1);
    let max_level = scenario.max_level(&spec.params);
    let rank_workers = (spec.workers / nranks).max(1);
    let mut results = minimpi::run(nranks, |comm| -> Option<Vec<SearchRow>> {
        let baseline = Observable {
            values: if comm.rank() == 0 {
                let obs = scenario.build(&spec.params).run(&Session::passthrough());
                comm.broadcast(0, TAG_BASELINE, &obs.values)
            } else {
                comm.broadcast(0, TAG_BASELINE, &[])
            },
        };
        let (lo, hi) = block_range(spec.cutoffs.len(), comm.size(), comm.rank());
        let block = &spec.cutoffs[lo..hi];
        let pool = amr::Pool::new();
        let slots: Vec<Mutex<Option<SearchRow>>> = block.iter().map(|_| Mutex::new(None)).collect();
        pool.run(block.len(), rank_workers, &|i| {
            let row = search_row(scenario, spec, block[i], max_level, &baseline);
            *slots[i].lock().unwrap() = Some(row);
        });
        let mine: Vec<SearchRow> = slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("rank bisected its rows"))
            .collect();
        let gathered = comm
            .gather_wire(0, TAG_ROWS, &Shard(mine))
            .expect("search rows round-trip the wire");
        gathered.map(|shards| shards.into_iter().flat_map(|s| s.0).collect())
    });
    results[0].take().expect("rank 0 gathered the merged rows")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_partition_covers_everything_once_with_balanced_remainders() {
        for n in [0usize, 1, 3, 7, 12, 13] {
            for nranks in 1..=6usize {
                let mut covered = Vec::new();
                let mut sizes = Vec::new();
                for r in 0..nranks {
                    let (lo, hi) = block_range(n, nranks, r);
                    assert!(lo <= hi && hi <= n);
                    covered.extend(lo..hi);
                    sizes.push(hi - lo);
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} ranks={nranks}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced: n={n} ranks={nranks} sizes={sizes:?}");
            }
        }
    }
}
