//! Distributed campaigns: the precision-sweep lattice and the greedy
//! bisection fanned out across [`minimpi`] ranks through the shared
//! work-stealing [`TaskPool`].
//!
//! [`run_campaign_distributed`] is the cluster-shaped twin of
//! [`crate::run_campaign`]:
//!
//! 1. missing candidate indices enter the pool's queue; every rank
//!    (rank 0 included) contributes stealer threads that pull one
//!    candidate at a time, so skewed per-candidate costs never idle a
//!    rank the way the retired static block partition could;
//! 2. the full-precision baseline observable is a lazy pool *resource*:
//!    the first stealer to need it computes and uploads it bit-exactly
//!    (hex `f64::to_bits` words), and a fully-cached resume never runs
//!    it at all;
//! 3. per-candidate [`CandidateOutcome`] rows travel back to rank 0 as
//!    `done` payloads (JSON documents whose finite `f64` fields
//!    round-trip exactly) and are reassembled **in candidate lattice
//!    order**, so the stable ranking sort produces a merged
//!    [`CampaignReport`] byte-identical to the single-rank sweep.
//!
//! [`precision_search_distributed`] steals at **probe** granularity: each
//! greedy-bisection probe is one task, and the per-cutoff chain state
//! (a `campaign::ProbeChain`) lives with the row owner — the rank-0
//! queue server — which readies a chain's next probe the moment its
//! pending one completes. Probe chains are the most skewed work in the
//! repo (their lengths differ per cutoff), and the old row-per-rank
//! block partition pinned each chain to one rank; stealing probes keeps
//! every rank busy until the last chain dries up, while the shared
//! `ProbeChain` machine keeps the merged rows identical to the serial
//! search probe for probe.
//!
//! Resume layers on top ([`run_campaign_distributed_resumable`]): rows
//! already present in an [`OutcomeCache`] are not re-run — only missing
//! candidates enter the queue — and freshly computed rows are written
//! back, so an interrupted sweep restarts warm. A fully-warm resume runs
//! **zero** scenarios (the baseline self-fidelity is cached too). Cached
//! `accepted` verdicts are re-gated against the live fidelity floor at
//! merge time. Precision hunts resume the same way
//! ([`precision_search_resumed`]): every bisection probe is a
//! deterministic `(scenario, scale, cutoff, m)` point, so cached probes
//! advance the chains without granting tasks and a warm re-hunt skips
//! the pool — and the baseline — entirely.

use crate::cache::{OutcomeCache, ResumeStats};
use crate::campaign::{
    eligible_candidates, regate_and_rank, run_candidate, run_probe, CampaignReport, CampaignSpec,
    CandidateOutcome, CandidateSpec, ProbeChain, SearchRow, SearchSpec,
};
use crate::queue::{FixedTasks, Task, TaskPool, TaskSource};
use crate::scenario::{Observable, Scenario};
use crate::study::StudyStats;
use minimpi::{Json, Wire};
use raptor_core::Session;
use std::collections::{HashMap, VecDeque};
use std::time::Instant;

impl Wire for CandidateOutcome {
    fn to_wire(&self) -> Json {
        self.to_json()
    }

    fn from_wire(doc: &Json) -> Result<CandidateOutcome, String> {
        CandidateOutcome::from_json(doc)
    }
}

impl Wire for SearchRow {
    fn to_wire(&self) -> Json {
        self.to_json()
    }

    fn from_wire(doc: &Json) -> Result<SearchRow, String> {
        SearchRow::from_json(doc)
    }
}

/// The lazy-baseline resource key (campaigns and searches have exactly
/// one shared resource: the scenario's full-precision observable).
const BASELINE_KEY: u64 = 0;

/// Run `f` against the baseline [`Observable`] for pool resource `key`,
/// materializing it from the raw resource vector at most once per
/// stealer (via [`TaskCtx::memo`](crate::queue::TaskCtx::memo), so the
/// memo lives and dies with the stealer's pool run) — tasks are whole
/// scenario runs, but there is no reason to re-clone the resource vector
/// into an `Observable` for every one of them.
pub(crate) fn with_baseline<T>(
    ctx: &crate::queue::TaskCtx<'_>,
    key: u64,
    f: impl FnOnce(&Observable) -> T,
) -> T {
    ctx.memo(key, |ctx| Observable { values: (*ctx.resource(key)).clone() }, f)
}

/// Run a campaign sharded across `nranks` minimpi ranks and return the
/// merged, deterministically-ordered report — content-identical to
/// [`crate::run_campaign`] on the same scenario and spec (same labels,
/// fidelities, predicted speedups, and ranking, for any rank count).
pub fn run_campaign_distributed(
    scenario: &dyn Scenario,
    spec: &CampaignSpec,
    nranks: usize,
) -> CampaignReport {
    run_campaign_distributed_resumable(scenario, spec, nranks, None).0
}

/// [`run_campaign_distributed`] with campaign resume: candidates already
/// in `cache` are served from it (zero re-runs for a completed campaign);
/// only missing candidates enter the work-stealing queue, and every row
/// of the merged report is written back to the cache. The caller persists
/// the cache with [`OutcomeCache::save`] when it wants durability.
pub fn run_campaign_distributed_resumable(
    scenario: &dyn Scenario,
    spec: &CampaignSpec,
    nranks: usize,
    cache: Option<&mut OutcomeCache>,
) -> (CampaignReport, ResumeStats) {
    let (report, stats) = run_campaign_distributed_stats(scenario, spec, nranks, cache);
    (report, ResumeStats { cached: stats.cached, computed: stats.computed })
}

/// [`run_campaign_distributed_resumable`] returning the full scheduler
/// statistics ([`StudyStats`]: per-rank distribution, effective stealer
/// count, queue wait, wall time) alongside the merged report — the row
/// the stats history persists.
pub fn run_campaign_distributed_stats(
    scenario: &dyn Scenario,
    spec: &CampaignSpec,
    nranks: usize,
    cache: Option<&mut OutcomeCache>,
) -> (CampaignReport, StudyStats) {
    let t0 = Instant::now();
    let nranks = nranks.max(1);
    let max_level = scenario.max_level(&spec.params);
    let candidates = eligible_candidates(spec, max_level);
    let mut cached: Vec<Option<CandidateOutcome>> = candidates
        .iter()
        .map(|c| {
            cache.as_deref().and_then(|k| k.get(scenario.name(), &spec.params, c).cloned())
        })
        .collect();
    let missing: Vec<CandidateSpec> = candidates
        .iter()
        .zip(&cached)
        .filter(|(_, hit)| hit.is_none())
        .map(|(c, _)| (*c).clone())
        .collect();
    let mut stats = StudyStats {
        cached: candidates.len() - missing.len(),
        computed: missing.len(),
        pairs_by_rank: vec![0; nranks],
        ..StudyStats::default()
    };

    let (baseline_fidelity, computed): (f64, Vec<CandidateOutcome>) = if missing.is_empty() {
        // Fully warm: nothing to run — not even the baseline (its
        // self-fidelity is cached alongside the rows; 1.0 by construction
        // if this cache predates baseline recording).
        let bf = cache
            .as_deref()
            .and_then(|k| k.baseline(scenario.name(), &spec.params))
            .unwrap_or(1.0);
        (bf, Vec::new())
    } else {
        let pool = TaskPool::new(nranks, spec.workers);
        let missing_ref = &missing;
        let mut run = pool.run(
            1,
            FixedTasks::new(missing.len()),
            // Stealers are plain threads, not pool workers: mark each
            // candidate run as in-sweep so a scenario's interior mesh
            // sweeps (params.threads > 1) run inline instead of
            // serializing all stealers on the process-wide pool's
            // submit lock.
            &|ctx, task, _detail| {
                with_baseline(ctx, BASELINE_KEY, |baseline| {
                    amr::run_inline(|| {
                        run_candidate(
                            scenario,
                            spec,
                            &missing_ref[task as usize],
                            max_level,
                            baseline,
                        )
                    })
                    .to_json()
                })
            },
            &|_key| {
                amr::run_inline(|| scenario.build(&spec.params).run(&Session::passthrough()))
                    .values
            },
        );
        stats.absorb_pool(run.stats);
        // Some stealer computed the baseline (every task scores against
        // it); rank 0 rebuilds the self-fidelity from the exact bits.
        let obs = Observable {
            values: run.resources[BASELINE_KEY as usize]
                .take()
                .expect("a missing candidate touched the baseline"),
        };
        let bf = scenario.fidelity(&obs, &obs);
        let computed: Vec<CandidateOutcome> = run
            .source
            .into_payloads()
            .into_iter()
            .map(|p| {
                CandidateOutcome::from_json(&p.expect("every missing candidate completed"))
                    .expect("outcome rows round-trip the wire")
            })
            .collect();
        (bf, computed)
    };

    // Reassemble in candidate-lattice order — cached rows slot back in
    // where they came from — then re-gate and rank. The stable sort makes
    // the merged report bit-identical in content to the single-rank one.
    let mut fresh = computed.into_iter();
    let mut outcomes: Vec<CandidateOutcome> = cached
        .iter_mut()
        .map(|slot| match slot.take() {
            Some(o) => o,
            None => fresh.next().expect("every missing candidate was computed"),
        })
        .collect();
    debug_assert!(fresh.next().is_none(), "computed rows fully consumed");
    regate_and_rank(&mut outcomes, spec);

    if let Some(k) = cache {
        for o in &outcomes {
            k.insert(scenario.name(), &spec.params, o);
        }
        k.set_baseline(scenario.name(), &spec.params, baseline_fidelity);
    }

    let report = CampaignReport {
        scenario: scenario.name().to_string(),
        crate_name: scenario.crate_name().to_string(),
        params: spec.params,
        fidelity_floor: spec.fidelity_floor,
        baseline_fidelity,
        outcomes,
    };
    stats.wall_s = t0.elapsed().as_secs_f64();
    (report, stats)
}

/// Load the cache at `path`, run the campaign resumably across `nranks`
/// ranks, persist the updated cache, and append one row to the
/// `stats_history.jsonl` next to it — the `--ranks N --resume <path>`
/// CLI flow as one call. The history append is best-effort
/// observability: a failure there is reported on stderr, never allowed
/// to discard the completed (and already persisted) run.
pub fn run_campaign_resumed(
    scenario: &dyn Scenario,
    spec: &CampaignSpec,
    nranks: usize,
    path: impl Into<std::path::PathBuf>,
) -> Result<(CampaignReport, ResumeStats), String> {
    let mut cache = OutcomeCache::load(path)?;
    let (report, stats) =
        run_campaign_distributed_stats(scenario, spec, nranks, Some(&mut cache));
    cache.save()?;
    if let Err(e) = crate::study::append_stats_history(
        cache.path(),
        &crate::study::StatsRecord::now(format!("campaign:{}", scenario.name()), nranks, &stats),
    ) {
        eprintln!("warning: scheduler stats history not recorded: {e}");
    }
    Ok((report, ResumeStats { cached: stats.cached, computed: stats.computed }))
}

// ---------------------------------------------------------------------------
// Probe-granularity precision search
// ---------------------------------------------------------------------------

/// The dynamic [`TaskSource`] of a distributed precision search: one
/// [`ProbeChain`] per M-l cutoff, each exposing its single pending probe
/// as a task. Completing a probe advances the owning chain and readies
/// its next probe; the source is exhausted when every chain has reached
/// its answer. Chain state never leaves the server, so the merged rows
/// are the serial rows by construction.
struct ChainSource {
    chains: Vec<ProbeChain>,
    /// The cutoff of each chain (index-aligned with `chains`).
    cutoffs: Vec<u32>,
    /// `(chain index, mantissa)` probes ready to grant.
    ready: VecDeque<(usize, u32)>,
    /// Granted-but-unfinished probes, by task id.
    inflight: HashMap<u64, (usize, u32)>,
    next_id: u64,
    /// Probes computed by pool workers this run.
    probes: usize,
    /// Probes served from the cache snapshot without running anything.
    cached: usize,
    /// Cached `(cutoff, m) -> (fidelity, truncated_fraction)` points,
    /// snapshotted before the pool starts (the source lives on the
    /// rank-0 server thread; it cannot touch the caller's cache).
    snapshot: HashMap<(u32, u32), (f64, f64)>,
    /// Probes computed this run, for write-back after the pool drains:
    /// `(cutoff, m, fidelity, truncated_fraction)`.
    fresh: Vec<(u32, u32, f64, f64)>,
}

impl ChainSource {
    fn new(spec: &SearchSpec, snapshot: HashMap<(u32, u32), (f64, f64)>) -> ChainSource {
        let mut chains = Vec::with_capacity(spec.cutoffs.len());
        let mut ready = VecDeque::with_capacity(spec.cutoffs.len());
        for (ci, &cutoff) in spec.cutoffs.iter().enumerate() {
            let (chain, first) = ProbeChain::new(cutoff, spec.mantissa, spec.fidelity_floor);
            chains.push(chain);
            ready.push_back((ci, first));
        }
        let mut source = ChainSource {
            chains,
            cutoffs: spec.cutoffs.clone(),
            ready,
            inflight: HashMap::new(),
            next_id: 0,
            probes: 0,
            cached: 0,
            snapshot,
            fresh: Vec::new(),
        };
        source.drain_cached();
        source
    }

    /// Advance every chain through consecutively-cached probes without
    /// granting them as tasks. Runs at construction (so a fully-warm
    /// source is exhausted before the pool even starts) and after every
    /// completion (a computed probe's successor may well be cached —
    /// partial warmth from an interrupted hunt).
    fn drain_cached(&mut self) {
        let mut pending = std::mem::take(&mut self.ready);
        while let Some((ci, m)) = pending.pop_front() {
            match self.snapshot.get(&(self.cutoffs[ci], m)) {
                Some(&(fid, frac)) => {
                    self.cached += 1;
                    if let Some(next) = self.chains[ci].advance(m, fid, frac) {
                        pending.push_back((ci, next));
                    }
                }
                None => self.ready.push_back((ci, m)),
            }
        }
    }

    fn into_rows(self) -> Vec<SearchRow> {
        debug_assert!(self.inflight.is_empty(), "no probe left in flight");
        self.chains.into_iter().map(ProbeChain::into_row).collect()
    }
}

impl TaskSource for ChainSource {
    fn next(&mut self) -> Option<Task> {
        let (ci, m) = self.ready.pop_front()?;
        let id = self.next_id;
        self.next_id += 1;
        self.inflight.insert(id, (ci, m));
        Some(Task { id, detail: Json::obj().set("chain", ci).set("m", m) })
    }

    fn complete(&mut self, task: u64, payload: Json) -> Result<(), String> {
        let (ci, m) =
            self.inflight.remove(&task).ok_or_else(|| format!("unknown probe task {task}"))?;
        self.probes += 1;
        let fid = payload.f64_field_lossless("fidelity")?;
        let frac = payload.f64_field_lossless("truncated_fraction")?;
        self.fresh.push((self.cutoffs[ci], m, fid, frac));
        if let Some(next_m) = self.chains[ci].advance(m, fid, frac) {
            self.ready.push_back((ci, next_m));
            self.drain_cached();
        }
        Ok(())
    }

    fn exhausted(&self) -> bool {
        self.chains.iter().all(ProbeChain::finished)
    }
}

/// The distributed twin of [`crate::precision_search`], stolen at
/// **probe** granularity: every greedy-bisection probe of every M-l
/// cutoff row is one work-stealing task, with the per-cutoff chain state
/// held by the rank-0 row owner. Rows come back in cutoff order,
/// row-for-row identical to the single-rank search.
pub fn precision_search_distributed(
    scenario: &dyn Scenario,
    spec: &SearchSpec,
    nranks: usize,
) -> Vec<SearchRow> {
    precision_search_distributed_stats(scenario, spec, nranks).0
}

/// [`precision_search_distributed`] returning the scheduler statistics:
/// `pairs_by_rank` counts completed *probes* per rank (`computed` is the
/// total probe count; nothing is cached without a cache — see
/// [`precision_search_distributed_resumable`]).
pub fn precision_search_distributed_stats(
    scenario: &dyn Scenario,
    spec: &SearchSpec,
    nranks: usize,
) -> (Vec<SearchRow>, StudyStats) {
    precision_search_distributed_resumable(scenario, spec, nranks, None)
}

/// [`precision_search_distributed`] against a probe cache: cached
/// `(cutoff, m)` points are snapshotted into the `ChainSource`, which
/// advances chains through them without granting tasks. When every chain
/// drains from the snapshot alone — a warm re-hunt — the pool (and the
/// baseline reference run) is skipped entirely: **zero** scenario runs.
/// Fresh probes are recorded back into the cache (staged; the caller
/// saves). `cached`/`computed` in the returned stats count probes served
/// from the cache vs. run by pool workers.
pub fn precision_search_distributed_resumable(
    scenario: &dyn Scenario,
    spec: &SearchSpec,
    nranks: usize,
    cache: Option<&mut OutcomeCache>,
) -> (Vec<SearchRow>, StudyStats) {
    let t0 = Instant::now();
    let nranks = nranks.max(1);
    let max_level = scenario.max_level(&spec.params);
    let mut snapshot = HashMap::new();
    if let Some(c) = cache.as_deref() {
        for &cutoff in &spec.cutoffs {
            for m in spec.mantissa.0..=spec.mantissa.1 {
                if let Some(v) =
                    c.get_probe(scenario.name(), &spec.params, spec.exp_bits, cutoff, m)
                {
                    snapshot.insert((cutoff, m), v);
                }
            }
        }
    }
    let source = ChainSource::new(spec, snapshot);
    if source.exhausted() {
        // Fully warm: every chain reached its answer from cached probes.
        // No pool, no baseline run, no scenario runs at all. Per-rank
        // counts stay sized by the rank count (all zero: no pool ran).
        let mut stats =
            StudyStats { cached: source.cached, computed: 0, ..StudyStats::default() };
        stats.pairs_by_rank = vec![0; nranks];
        stats.wall_s = t0.elapsed().as_secs_f64();
        return (source.into_rows(), stats);
    }
    let pool = TaskPool::new(nranks, spec.workers);
    let run = pool.run(
        1,
        source,
        &|ctx, _task, detail| {
            let ci = detail.u64_field("chain").expect("grant carries the chain index") as usize;
            let m = detail.u64_field("m").expect("grant carries the probe width") as u32;
            let (fid, frac) = with_baseline(ctx, BASELINE_KEY, |baseline| {
                amr::run_inline(|| {
                    run_probe(scenario, spec, spec.cutoffs[ci], m, max_level, baseline)
                })
            });
            Json::obj()
                .set("fidelity", Json::from_f64_lossless(fid))
                .set("truncated_fraction", Json::from_f64_lossless(frac))
        },
        &|_key| {
            amr::run_inline(|| scenario.build(&spec.params).run(&Session::passthrough())).values
        },
    );
    if let Some(c) = cache {
        for &(cutoff, m, fid, frac) in &run.source.fresh {
            c.insert_probe(scenario.name(), &spec.params, spec.exp_bits, cutoff, m, fid, frac);
        }
    }
    let mut stats = StudyStats {
        cached: run.source.cached,
        computed: run.source.probes,
        ..StudyStats::default()
    };
    stats.absorb_pool(run.stats);
    stats.wall_s = t0.elapsed().as_secs_f64();
    (run.source.into_rows(), stats)
}

/// Run a cache-backed precision hunt end to end: load (or migrate) the
/// cache at `path`, search with cached probes, persist fresh ones, and
/// append one scheduler-stats record (labelled `hunt:<scenario>`) to the
/// cache's stats history. The hunt twin of [`run_campaign_resumed`].
pub fn precision_search_resumed(
    scenario: &dyn Scenario,
    spec: &SearchSpec,
    nranks: usize,
    path: impl Into<std::path::PathBuf>,
) -> Result<(Vec<SearchRow>, StudyStats), String> {
    let mut cache = OutcomeCache::load(path)?;
    let (rows, stats) =
        precision_search_distributed_resumable(scenario, spec, nranks, Some(&mut cache));
    cache.save()?;
    if let Err(e) = crate::study::append_stats_history(
        cache.path(),
        &crate::study::StatsRecord::now(format!("hunt:{}", scenario.name()), nranks, &stats),
    ) {
        eprintln!("warning: scheduler stats history not recorded: {e}");
    }
    Ok((rows, stats))
}

#[cfg(test)]
mod tests {
    /// The retired static block partition, kept only as the reference
    /// the balance tests compare against: rank `rank` of `nranks` owned
    /// `[rank·n/nranks, (rank+1)·n/nranks)`.
    fn block_range(n: usize, nranks: usize, rank: usize) -> (usize, usize) {
        (rank * n / nranks, (rank + 1) * n / nranks)
    }

    #[test]
    fn block_partition_reference_covers_everything_once_with_balanced_remainders() {
        for n in [0usize, 1, 3, 7, 12, 13] {
            for nranks in 1..=6usize {
                let mut covered = Vec::new();
                let mut sizes = Vec::new();
                for r in 0..nranks {
                    let (lo, hi) = block_range(n, nranks, r);
                    assert!(lo <= hi && hi <= n);
                    covered.extend(lo..hi);
                    sizes.push(hi - lo);
                }
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} ranks={nranks}");
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1, "balanced: n={n} ranks={nranks} sizes={sizes:?}");
            }
        }
    }
}
