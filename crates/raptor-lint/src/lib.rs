//! `raptor-lint` — repo-native static analysis for the RAPTOR workspace.
//!
//! Every number in the reproduction's codesign tables is only meaningful if
//! **every** floating-point operation in a kernel routes through the
//! `Tracked` dispatch layer, and the concurrency layer's informal proofs
//! ("one shard lock at a time", "the closure outlives the workers") stay
//! true as the code evolves. This crate walks the workspace sources with a
//! hand-rolled lightweight Rust lexer ([`lexer`]) and enforces four
//! repo-specific rules:
//!
//! 1. **tracked-escape** ([`rules::tracked`]) — no raw `f64`/`f32`
//!    arithmetic or `std` float intrinsics inside the kernel crates
//!    (`hydro`, `incomp`, `eos`, `raptor-ir`) outside the `Real`
//!    abstraction. Legitimate native sites (CFL/dt bookkeeping, geometry
//!    setup, untracked coefficient prep) carry an explicit
//!    `// lint: allow(native-float, <reason>)` annotation.
//! 2. **unsafe-audit** ([`rules::unsafe_audit`]) — every `unsafe`
//!    block/impl/fn carries a `// SAFETY:` justification (or a
//!    `# Safety` doc section), and library crates with zero unsafe declare
//!    `#![forbid(unsafe_code)]` so the invariant is anchored in the
//!    compiler too.
//! 3. **lock-discipline** ([`rules::locks`]) — the lock-acquisition graph
//!    of the cache and scheduler layers is extracted (interprocedurally,
//!    within the configured files) and checked: no nested shard-lock
//!    scopes, no shard lock held across another lock-taking cache entry
//!    point, no lock-order cycles.
//! 4. **batch-pairing** ([`rules::batch_pair`]) — every public `*_batch`
//!    kernel has a scalar twin (`foo_batch` ⇔ `foo`) and is referenced by
//!    a differential test or the `batch_diff` smoke, so the bit-identity
//!    contract can never silently lose coverage.
//!
//! ## Annotation grammar
//!
//! ```text
//! // lint: allow(<rule>, <reason>)
//! ```
//!
//! where `<rule>` is currently `native-float` and `<reason>` is free text
//! that must be non-empty — an allow without a written reason is itself a
//! finding. Scope is positional:
//!
//! * trailing on a code line → that line only;
//! * on its own line directly above an item (`fn`/`impl`/`mod`/`trait`)
//!   → the whole item body;
//! * on its own line above a statement → that statement;
//! * as an inner comment (`//! lint: allow(...)`) → the whole file.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;

use lexer::{lex, Lexed, TokKind, Token};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

pub use report::Finding;

/// Crates whose kernels must route all FP math through `Real` (rule 1).
pub const KERNEL_CRATES: &[&str] = &["hydro", "incomp", "eos", "raptor-ir"];

/// Files whose lock usage is modeled by rule 3 (workspace-relative path
/// prefixes).
pub const LOCK_SCOPE: &[&str] = &["crates/raptor-lab/src/", "crates/amr/src/pool.rs"];

/// Cache entry points that acquire a shard lock internally: calling one
/// while a shard lock is held would self-deadlock on the advisory lock.
pub const LOCKING_ENTRY_POINTS: &[&str] = &["append_lines", "read_shard", "rewrite_shard"];

/// Where a source file sits in its crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Under `src/`.
    Src,
    /// Under `tests/` or `benches/` (integration tests / bench harness).
    Test,
}

/// A parsed `// lint: allow(rule, reason)` annotation with its resolved
/// suppression range (inclusive source lines).
#[derive(Clone, Debug)]
pub struct Allow {
    /// Rule name inside `allow(...)`, e.g. `native-float`.
    pub rule: String,
    /// The written justification (must be non-empty).
    pub reason: String,
    /// Line the annotation appears on.
    pub line: usize,
    /// First suppressed line.
    pub start: usize,
    /// Last suppressed line.
    pub end: usize,
}

/// One lexed workspace source file plus the derived lookup structures the
/// rules share.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Name of the owning crate (directory name under `crates/`,
    /// `raptor-examples` for `examples/`, `raptor-rs` for the root).
    pub crate_name: String,
    /// Src or Test.
    pub kind: FileKind,
    /// Token stream + comments.
    pub lexed: Lexed,
    /// For each token index holding an opening delimiter, the index of
    /// its matching closer (and vice versa).
    pub matches: Vec<Option<usize>>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` items or
    /// `#[test]` functions.
    pub test_ranges: Vec<(usize, usize)>,
    /// Parsed allow annotations.
    pub allows: Vec<Allow>,
}

impl SourceFile {
    /// Whether `line` is inside a `#[cfg(test)]` / `#[test]` region.
    pub fn in_test(&self, line: usize) -> bool {
        self.kind == FileKind::Test
            || self.test_ranges.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// Whether a finding of `rule` at `line` is suppressed by an allow.
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.iter().any(|a| a.rule == rule && a.start <= line && line <= a.end)
    }

    /// Matching delimiter for the token at `i`, if `i` is a delimiter.
    pub fn matching(&self, i: usize) -> Option<usize> {
        self.matches.get(i).copied().flatten()
    }
}

/// The scanned workspace: every `.rs` file of every member crate.
pub struct Workspace {
    /// All lexed files, in stable (sorted) path order.
    pub files: Vec<SourceFile>,
}

/// Lint the workspace rooted at `root` with all four rules plus the
/// annotation-grammar check. Findings come back sorted by (file, line).
pub fn lint_workspace(root: &Path) -> Result<Vec<Finding>, String> {
    let ws = Workspace::scan(root)?;
    let mut findings = Vec::new();
    findings.extend(check_annotations(&ws));
    findings.extend(rules::tracked::check(&ws));
    findings.extend(rules::unsafe_audit::check(&ws));
    findings.extend(rules::locks::check(&ws));
    findings.extend(rules::batch_pair::check(&ws));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.msg == b.msg);
    Ok(findings)
}

impl Workspace {
    /// Scan `root` (a workspace directory laid out like this repo:
    /// `crates/*`, `examples/`, plus the root facade crate) and lex every
    /// `.rs` file under each member's `src/`, `tests/`, and `benches/`.
    /// Directories named `fixtures` are skipped — they hold seeded-
    /// violation inputs for the lint's own tests.
    pub fn scan(root: &Path) -> Result<Workspace, String> {
        let mut files = Vec::new();
        let mut members: Vec<(String, PathBuf)> = Vec::new();
        let crates_dir = root.join("crates");
        if let Ok(entries) = std::fs::read_dir(&crates_dir) {
            for e in entries.flatten() {
                let name = e.file_name().to_string_lossy().into_owned();
                // The linter exempts itself: its sources and docs are full
                // of deliberately-malformed annotations and seeded
                // violations (they are its test vocabulary); its own
                // invariants are enforced by its unit tests.
                if name == "raptor-lint" {
                    continue;
                }
                if e.path().is_dir() {
                    members.push((name, e.path()));
                }
            }
        }
        if root.join("examples/src").is_dir() {
            members.push(("raptor-examples".into(), root.join("examples")));
        }
        if root.join("src").is_dir() {
            members.push(("raptor-rs".into(), root.to_path_buf()));
        }
        if members.is_empty() {
            return Err(format!("{}: no workspace members found", root.display()));
        }
        members.sort();
        for (name, dir) in members {
            for (sub, kind) in
                [("src", FileKind::Src), ("tests", FileKind::Test), ("benches", FileKind::Test)]
            {
                collect_rs(&dir.join(sub), &mut |path| {
                    let src = std::fs::read_to_string(path)
                        .map_err(|e| format!("read {}: {e}", path.display()))?;
                    let rel = path
                        .strip_prefix(root)
                        .unwrap_or(path)
                        .to_string_lossy()
                        .replace('\\', "/");
                    files.push(SourceFile::new(rel, name.clone(), kind, &src));
                    Ok(())
                })?;
            }
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Workspace { files })
    }

    /// The files of one crate.
    pub fn crate_files<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SourceFile> {
        self.files.iter().filter(move |f| f.crate_name == name)
    }
}

fn collect_rs(
    dir: &Path,
    f: &mut dyn FnMut(&Path) -> Result<(), String>,
) -> Result<(), String> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Ok(()) };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            let name = path.file_name().map(|n| n.to_string_lossy().into_owned());
            if matches!(name.as_deref(), Some("fixtures" | "target" | ".git")) {
                continue;
            }
            collect_rs(&path, f)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            f(&path)?;
        }
    }
    Ok(())
}

impl SourceFile {
    /// Lex and derive the shared lookup structures for one file.
    pub fn new(rel: String, crate_name: String, kind: FileKind, src: &str) -> SourceFile {
        let lexed = lex(src);
        let matches = match_delims(&lexed.tokens);
        let mut file = SourceFile {
            rel,
            crate_name,
            kind,
            lexed,
            matches,
            test_ranges: Vec::new(),
            allows: Vec::new(),
        };
        file.test_ranges = find_test_ranges(&file);
        file.allows = resolve_allows(&file);
        file
    }
}

/// Pair up `(`/`)`, `[`/`]`, `{`/`}` over the token stream.
fn match_delims(tokens: &[Token]) -> Vec<Option<usize>> {
    let mut out = vec![None; tokens.len()];
    let mut stack: Vec<(usize, &str)> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" | "{" => stack.push((i, t.text.as_str())),
            ")" | "]" | "}" => {
                let want = match t.text.as_str() {
                    ")" => "(",
                    "]" => "[",
                    _ => "{",
                };
                // Pop until the matching opener kind (tolerates stray
                // unbalanced delimiters in half-broken sources).
                while let Some((open, kind)) = stack.pop() {
                    if kind == want {
                        out[open] = Some(i);
                        out[i] = Some(open);
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// A function item found in the token stream (at any nesting depth).
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Token range of the parameter list, `(` .. `)` inclusive.
    pub params: (usize, usize),
    /// Token range of the body `{` .. `}` inclusive; `None` for
    /// body-less trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Source line of the `fn` keyword.
    pub line: usize,
}

/// Collect every `fn` item in the file, at any depth.
pub fn collect_fns(file: &SourceFile) -> Vec<FnItem> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1; // `fn(` pointer type
            continue;
        }
        // Find the parameter list: first `(` at angle-bracket depth 0.
        let mut j = i + 2;
        let mut angle = 0i32;
        let popen = loop {
            let Some(t) = toks.get(j) else { break None };
            match t.text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                "<<" => angle += 2,
                ">>" => angle -= 2,
                "(" if angle <= 0 => break Some(j),
                "{" | ";" => break None,
                _ => {}
            }
            j += 1;
        };
        let Some(popen) = popen else {
            i += 1;
            continue;
        };
        let Some(pclose) = file.matching(popen) else {
            i += 1;
            continue;
        };
        // Find the body `{` (skipping return-type and where-clause
        // delimiters) or a terminating `;`.
        let mut k = pclose + 1;
        let mut body = None;
        while let Some(t) = toks.get(k) {
            match t.text.as_str() {
                "{" => {
                    if let Some(close) = file.matching(k) {
                        body = Some((k, close));
                    }
                    break;
                }
                ";" => break,
                "(" | "[" => {
                    k = file.matching(k).unwrap_or(k);
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnItem {
            name: name_tok.text.clone(),
            fn_idx: i,
            params: (popen, pclose),
            body,
            line: toks[i].line,
        });
        i = popen; // keep scanning inside (nested fns are separate items)
    }
    out
}

/// Line ranges covered by `#[cfg(test)]` items and `#[test]` functions.
fn find_test_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // An attribute: `#` `[` ... `]`.
        if toks[i].text == "#" && toks.get(i + 1).is_some_and(|t| t.text == "[") {
            let Some(close) = file.matching(i + 1) else {
                i += 1;
                continue;
            };
            let attr: Vec<&str> =
                toks[i + 2..close].iter().map(|t| t.text.as_str()).collect();
            let is_test_attr = attr == ["test"]
                || (attr.contains(&"cfg") && attr.contains(&"test"))
                || (attr.first() == Some(&"cfg_attr") && attr.contains(&"test"));
            if !is_test_attr {
                i = close + 1;
                continue;
            }
            // Skip further attributes, then find the annotated item's body.
            let mut j = close + 1;
            while toks.get(j).is_some_and(|t| t.text == "#")
                && toks.get(j + 1).is_some_and(|t| t.text == "[")
            {
                j = file.matching(j + 1).map(|c| c + 1).unwrap_or(j + 2);
            }
            // Scan to the item's `{` or `;` at depth 0.
            let mut k = j;
            while let Some(t) = toks.get(k) {
                match t.text.as_str() {
                    "{" => {
                        if let Some(end) = file.matching(k) {
                            out.push((toks[i].line, toks[end].line));
                            k = end;
                        }
                        break;
                    }
                    ";" | "}" => break,
                    "(" | "[" => k = file.matching(k).unwrap_or(k),
                    _ => {}
                }
                k += 1;
            }
            i = k.max(close) + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Extract and scope `lint: allow(...)` annotations from the comments.
fn resolve_allows(file: &SourceFile) -> Vec<Allow> {
    let toks = &file.lexed.tokens;
    let last_line = toks.last().map(|t| t.line).unwrap_or(1);
    let mut out = Vec::new();
    for c in &file.lexed.comments {
        let Some((rule, reason)) = parse_allow(&c.text) else { continue };
        let (start, end) = if c.inner_doc {
            (1, last_line)
        } else if !c.own_line {
            (c.line, c.line)
        } else {
            own_line_scope(file, c.line)
        };
        out.push(Allow { rule, reason, line: c.line, start, end });
    }
    out
}

/// Scope of an own-line annotation at `line`: the next item's body if the
/// next tokens introduce an item, otherwise the following statement.
fn own_line_scope(file: &SourceFile, line: usize) -> (usize, usize) {
    let toks = &file.lexed.tokens;
    let Some(first) = toks.iter().position(|t| t.line > line) else {
        return (line, line);
    };
    // Skip attributes and modifiers to see whether an item follows.
    let mut i = first;
    loop {
        let Some(t) = toks.get(i) else { return (line, toks.last().map(|t| t.line).unwrap_or(line)) };
        match t.text.as_str() {
            "#" if toks.get(i + 1).is_some_and(|t| t.text == "[") => {
                i = file.matching(i + 1).map(|c| c + 1).unwrap_or(i + 2);
            }
            "pub" => {
                i += 1;
                if toks.get(i).is_some_and(|t| t.text == "(") {
                    i = file.matching(i).map(|c| c + 1).unwrap_or(i + 1);
                }
            }
            "unsafe" | "const" | "async" | "extern" | "default" => i += 1,
            "fn" | "mod" | "impl" | "trait" => {
                // Item scope: to the matching close of its body.
                let mut k = i;
                while let Some(t) = toks.get(k) {
                    match t.text.as_str() {
                        "{" => {
                            let end = file.matching(k).map(|c| toks[c].line);
                            return (line, end.unwrap_or(toks[k].line));
                        }
                        ";" => return (line, toks[k].line),
                        "(" | "[" => k = file.matching(k).unwrap_or(k),
                        _ => {}
                    }
                    k += 1;
                }
                return (line, toks.last().map(|t| t.line).unwrap_or(line));
            }
            _ => break,
        }
    }
    // Statement scope: from the first token to its terminating `;` (or
    // the end of a trailing block) at the statement's depth.
    let mut depth = 0i32;
    let mut k = first;
    while let Some(t) = toks.get(k) {
        match t.text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return (line, toks[k].line);
                }
            }
            ";" if depth == 0 => return (line, toks[k].line),
            _ => {}
        }
        k += 1;
    }
    (line, toks.last().map(|t| t.line).unwrap_or(line))
}

/// Parse `lint: allow(rule, reason)` out of a comment. Returns None if
/// the comment carries no annotation; `Some((rule, reason))` with reason
/// possibly empty (the grammar check flags empty reasons).
fn parse_allow(text: &str) -> Option<(String, String)> {
    let at = text.find("lint:")?;
    let rest = text[at + 5..].trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.rfind(')')?;
    let inner = &rest[..close];
    let (rule, reason) = match inner.split_once(',') {
        Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
        None => (inner.trim().to_string(), String::new()),
    };
    Some((rule, reason))
}

/// Known annotation rules.
const ALLOW_RULES: &[&str] = &["native-float"];

/// Grammar check for the annotations themselves: unknown rule names and
/// empty reasons are findings — an allow must say *why*.
fn check_annotations(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        for a in &f.allows {
            if !ALLOW_RULES.contains(&a.rule.as_str()) {
                out.push(Finding::new(
                    "annotation",
                    &f.rel,
                    a.line,
                    format!("unknown lint rule `{}` in allow(...)", a.rule),
                ));
            } else if a.reason.is_empty() {
                out.push(Finding::new(
                    "annotation",
                    &f.rel,
                    a.line,
                    format!("allow({}) without a written reason", a.rule),
                ));
            }
        }
    }
    out
}

/// Map of source line → indices of tokens on that line.
pub fn tokens_by_line(file: &SourceFile) -> HashMap<usize, Vec<usize>> {
    let mut map: HashMap<usize, Vec<usize>> = HashMap::new();
    for (i, t) in file.lexed.tokens.iter().enumerate() {
        map.entry(t.line).or_default().push(i);
    }
    map
}
