//! A lightweight hand-rolled Rust lexer — just enough fidelity for the
//! repo's lint rules, in the same spirit as the hand-rolled JSON layer in
//! `raptor-core`.
//!
//! The lexer splits a source file into a token stream (identifiers,
//! literals, punctuation — comments and whitespace stripped) plus a
//! parallel list of [`Comment`]s with their own line numbers, because two
//! of the lint rules are *about* comments (`// SAFETY:` justifications and
//! the `// lint: allow(...)` annotation grammar). It understands exactly
//! the constructs that would otherwise corrupt a token-level analysis:
//! strings (plain / raw / byte), char literals vs. lifetimes, nested block
//! comments, float vs. integer literals (including `1e-6`, `1_000.0`, and
//! type suffixes), and multi-character operators (`+=`, `::`, `->`, ...).
//! It does **not** build a syntax tree — the rules do their own shallow,
//! brace-depth-based scoping on the stream.

/// Token classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the rules treat keywords by name).
    Ident,
    /// Integer literal (any base, integer suffix or none).
    Int,
    /// Floating-point literal (has a fractional part, an exponent, or an
    /// `f32`/`f64` suffix).
    Float,
    /// String literal (plain, raw, or byte; contents dropped).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation / operator, possibly multi-character (`+=`, `::`).
    Punct,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Token {
    /// Kind of token.
    pub kind: TokKind,
    /// Source text (for `Str`/`Char` a placeholder, not the contents).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

/// One comment, line or block, doc or plain.
#[derive(Clone, Debug)]
pub struct Comment {
    /// Full text including the `//` / `/*` sigils.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: usize,
    /// True for inner doc comments (`//!` / `/*!`): these attach to the
    /// enclosing file/module rather than the next item.
    pub inner_doc: bool,
    /// True if nothing but whitespace precedes the comment on its line
    /// (an "own-line" comment); false for trailing comments.
    pub own_line: bool,
}

/// Lexed file: token stream + comment list.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators, longest first so the greedy match wins.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

/// Lex `src` into tokens and comments. Never fails: unrecognized bytes
/// become single-character punctuation, which is safe for every rule.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    // Whether any non-whitespace token/comment has been seen on `line`.
    let mut line_has_code = false;

    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            let text = src[start..i].to_string();
            out.comments.push(Comment {
                inner_doc: text.starts_with("//!"),
                own_line: !line_has_code,
                text,
                line,
            });
            continue;
        }
        // Block comment (nested, as in Rust).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let text = src[start..i.min(b.len())].to_string();
            out.comments.push(Comment {
                inner_doc: text.starts_with("/*!"),
                own_line: !line_has_code,
                text,
                line: start_line,
            });
            line_has_code = true;
            continue;
        }
        line_has_code = true;
        // Raw / byte strings: r"..", r#".."#, br"..", b"..".
        if c == b'r' || c == b'b' {
            if let Some(next) = lex_raw_or_byte_string(b, i, &mut line) {
                out.tokens.push(Token { kind: TokKind::Str, text: "\"..\"".into(), line });
                i = next;
                continue;
            }
        }
        // Plain string.
        if c == b'"' {
            i = lex_string(b, i, &mut line);
            out.tokens.push(Token { kind: TokKind::Str, text: "\"..\"".into(), line });
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if let Some(next) = try_lex_char(b, i) {
                out.tokens.push(Token { kind: TokKind::Char, text: "'.'".into(), line });
                i = next;
                continue;
            }
            // Lifetime: consume `'ident`.
            let mut j = i + 1;
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            out.tokens.push(Token { kind: TokKind::Lifetime, text: src[i..j].to_string(), line });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let (next, kind, text) = lex_number(src, b, i);
            out.tokens.push(Token { kind, text, line });
            i = next;
            continue;
        }
        // Identifier / keyword (including raw identifiers `r#type` —
        // the `r` path above only fires for quotes).
        if c == b'_' || c.is_ascii_alphabetic() {
            let start = i;
            let mut j = i;
            if c == b'r' && i + 1 < b.len() && b[i + 1] == b'#' {
                j += 2; // raw identifier sigil
            }
            while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
                j += 1;
            }
            out.tokens.push(Token { kind: TokKind::Ident, text: src[start..j].to_string(), line });
            i = j;
            continue;
        }
        // Multi-char operator.
        let rest = &src[i..];
        if let Some(op) = MULTI_PUNCT.iter().find(|op| rest.starts_with(**op)) {
            out.tokens.push(Token { kind: TokKind::Punct, text: (*op).to_string(), line });
            i += op.len();
            continue;
        }
        // Single-char punctuation (also the fallback for any stray byte).
        let ch_len = src[i..].chars().next().map(char::len_utf8).unwrap_or(1);
        out.tokens.push(Token { kind: TokKind::Punct, text: src[i..i + ch_len].to_string(), line });
        i += ch_len;
    }
    out
}

/// Consume a plain `"..."` string starting at `i` (which is the quote).
fn lex_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => return i + 1,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Try to consume `r".."` / `r#".."#` / `b".."` / `br".."` starting at the
/// `r`/`b`. Returns the index past the string, or None if this is not a
/// string (e.g. just an identifier starting with r/b).
fn lex_raw_or_byte_string(b: &[u8], start: usize, line: &mut usize) -> Option<usize> {
    let mut i = start;
    if b[i] == b'b' {
        i += 1;
        if i < b.len() && b[i] == b'"' {
            return Some(lex_string(b, i, line));
        }
        if i >= b.len() || b[i] != b'r' {
            return None;
        }
    }
    // At `r`: raw string if followed by `#`* then `"`.
    i += 1;
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() || b[i] != b'"' {
        return None;
    }
    i += 1;
    // Scan for `"` followed by `hashes` hashes.
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
        }
        if b[i] == b'"' {
            let mut j = i + 1;
            let mut h = 0usize;
            while j < b.len() && b[j] == b'#' && h < hashes {
                h += 1;
                j += 1;
            }
            if h == hashes {
                return Some(j);
            }
        }
        i += 1;
    }
    Some(i)
}

/// Try to consume a char literal `'x'` / `'\n'`. Returns None for
/// lifetimes.
fn try_lex_char(b: &[u8], i: usize) -> Option<usize> {
    // i points at the opening quote.
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        j += 2;
        // Escapes like \u{1F600} run to the closing brace.
        while j < b.len() && b[j] != b'\'' {
            j += 1;
        }
        return if j < b.len() { Some(j + 1) } else { None };
    }
    // Multi-byte UTF-8 scalar or single byte, then a closing quote.
    let ch_len = if b[j] < 0x80 {
        1
    } else {
        match b[j] {
            0xC0..=0xDF => 2,
            0xE0..=0xEF => 3,
            _ => 4,
        }
    };
    j += ch_len;
    if j < b.len() && b[j] == b'\'' {
        Some(j + 1)
    } else {
        None // `'a` with no closing quote: a lifetime
    }
}

/// Lex a number starting at a digit. Distinguishes float from integer:
/// a `.` followed by a digit (or end-of-primary), an exponent, or an
/// `f32`/`f64` suffix makes it a float. `1.max(2)` stays an integer plus
/// a method call; `0..5` stays a range of integers.
fn lex_number(src: &str, b: &[u8], start: usize) -> (usize, TokKind, String) {
    let mut i = start;
    let mut is_float = false;
    // Hex/oct/bin literals are always integers.
    if b[i] == b'0' && i + 1 < b.len() && matches!(b[i + 1], b'x' | b'o' | b'b') {
        i += 2;
        while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
            i += 1;
        }
        return (i, TokKind::Int, src[start..i].to_string());
    }
    while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
        i += 1;
    }
    // Fractional part: `.` not followed by another `.` (range) or an
    // identifier char (method call / tuple field).
    if i < b.len() && b[i] == b'.' {
        let after = b.get(i + 1).copied();
        let next_is_digit = after.is_some_and(|c| c.is_ascii_digit());
        let next_blocks = after.is_some_and(|c| c == b'.' || c == b'_' || c.is_ascii_alphabetic());
        if next_is_digit || !next_blocks {
            is_float = true;
            i += 1;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Exponent.
    if i < b.len() && (b[i] == b'e' || b[i] == b'E') {
        let mut j = i + 1;
        if j < b.len() && (b[j] == b'+' || b[j] == b'-') {
            j += 1;
        }
        if j < b.len() && b[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < b.len() && (b[i].is_ascii_digit() || b[i] == b'_') {
                i += 1;
            }
        }
    }
    // Suffix.
    let suf_start = i;
    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
        i += 1;
    }
    let suffix = &src[suf_start..i];
    if suffix == "f32" || suffix == "f64" {
        is_float = true;
    } else if !suffix.is_empty() {
        is_float = false; // u8/i64/usize/... integer suffix
    }
    let kind = if is_float { TokKind::Float } else { TokKind::Int };
    (i, kind, src[start..i].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).tokens.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn numbers_classify() {
        let toks = kinds("1 2.0 1e-6 1_000.5 3f64 7u32 0xff 0.5e3 2. 1.max(2)");
        let floats: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Float).map(|(_, t)| t.clone()).collect();
        assert_eq!(floats, ["2.0", "1e-6", "1_000.5", "3f64", "0.5e3", "2."]);
        let ints: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Int).map(|(_, t)| t.clone()).collect();
        assert_eq!(ints, ["1", "7u32", "0xff", "1", "2"]);
    }

    #[test]
    fn ranges_are_not_floats() {
        let toks = kinds("for i in 0..5 { x[i] }");
        assert!(toks.iter().all(|(k, _)| *k != TokKind::Float));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
    }

    #[test]
    fn strings_chars_lifetimes() {
        let toks = kinds(r#"let s = "a * 2.0"; let c = '*'; fn f<'a>(x: &'a str) {}"#);
        assert!(toks.iter().all(|(k, _)| *k != TokKind::Float), "no float inside string");
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Str));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::Char));
        assert!(toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count() == 2);
    }

    #[test]
    fn raw_strings_and_nested_block_comments() {
        let lexed = lex("let x = r#\"2.0 * 3.0\"#; /* outer /* 5.0 */ 6.0 */ let y = 1;");
        assert!(lexed.tokens.iter().all(|t| t.kind != TokKind::Float));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.contains("outer"));
    }

    #[test]
    fn comments_track_lines_and_ownership() {
        let src = "let a = 1; // trailing\n// own line\nlet b = 2.0;\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(!lexed.comments[0].own_line);
        assert_eq!(lexed.comments[0].line, 1);
        assert!(lexed.comments[1].own_line);
        assert_eq!(lexed.comments[1].line, 2);
        let b_tok = lexed.tokens.iter().find(|t| t.text == "2.0").unwrap();
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn multi_char_operators_lex_greedily() {
        let toks = kinds("a += b; c ::< d -> e => f <<= g ..= h");
        let puncts: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Punct).map(|(_, t)| t.as_str()).collect();
        assert!(puncts.contains(&"+="));
        assert!(puncts.contains(&"::"));
        assert!(puncts.contains(&"->"));
        assert!(puncts.contains(&"=>"));
        assert!(puncts.contains(&"<<="));
        assert!(puncts.contains(&"..="));
    }

    #[test]
    fn doc_comment_floats_ignored() {
        let lexed = lex("/// computes `a * 2.0`\n//! module: 3.0\nfn f() {}");
        assert!(lexed.tokens.iter().all(|t| t.kind != TokKind::Float));
        assert!(lexed.comments[1].inner_doc);
    }
}
