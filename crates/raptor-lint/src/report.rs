//! Findings and output rendering (text and JSON).
//!
//! The JSON emitter is hand-rolled (10 lines) rather than a dependency —
//! the lint deliberately depends on nothing it lints.

/// One rule violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id: `tracked-escape`, `unsafe-audit`, `lock-discipline`,
    /// `batch-pairing`, or `annotation`.
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub msg: String,
}

impl Finding {
    /// Construct a finding.
    pub fn new(rule: &'static str, file: &str, line: usize, msg: String) -> Finding {
        Finding { rule, file: file.to_string(), line, msg }
    }
}

/// Render findings as one line each: `rule  file:line  message`.
pub fn render_text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!("{:<15} {}:{}  {}\n", f.rule, f.file, f.line, f.msg));
    }
    out.push_str(&format!(
        "raptor-lint: {} finding{}\n",
        findings.len(),
        if findings.len() == 1 { "" } else { "s" }
    ));
    out
}

/// Render findings as a JSON array of objects.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"msg\":\"{}\"}}",
            esc(f.rule),
            esc(&f.file),
            f.line,
            esc(&f.msg)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out.push('\n');
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_and_json_round_out() {
        let fs = vec![
            Finding::new("tracked-escape", "crates/hydro/src/a.rs", 3, "raw `*` on f64".into()),
            Finding::new("unsafe-audit", "crates/amr/src/b.rs", 9, "missing SAFETY".into()),
        ];
        let text = render_text(&fs);
        assert!(text.contains("crates/hydro/src/a.rs:3"));
        assert!(text.contains("2 findings"));
        let json = render_json(&fs);
        assert!(json.contains("\"rule\":\"unsafe-audit\""));
        assert!(json.contains("\"line\":9"));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
