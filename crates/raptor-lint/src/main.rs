//! CLI for `raptor-lint`. Usage:
//!
//! ```text
//! cargo run -p raptor-lint            # lint the workspace, text output
//! cargo run -p raptor-lint -- --json  # machine-readable findings
//! cargo run -p raptor-lint -- <root>  # lint another workspace root
//! ```
//!
//! Exit status: 0 when clean, 1 with findings, 2 on usage/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: raptor-lint [--json] [workspace-root]");
                return ExitCode::SUCCESS;
            }
            other if root.is_none() && !other.starts_with('-') => {
                root = Some(PathBuf::from(other))
            }
            other => {
                eprintln!("raptor-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.unwrap_or_else(default_root);
    let findings = match raptor_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("raptor-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", raptor_lint::report::render_json(&findings));
    } else {
        print!("{}", raptor_lint::report::render_text(&findings));
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Default root: the current directory if it looks like the workspace,
/// otherwise two levels up from this crate's manifest (so the binary
/// works from any cwd under `cargo run -p raptor-lint`).
fn default_root() -> PathBuf {
    let cwd = PathBuf::from(".");
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
        let ws = PathBuf::from(manifest).join("../..");
        if ws.join("crates").is_dir() {
            return ws;
        }
    }
    cwd
}
