//! Rule 2 — **unsafe-audit**: every `unsafe` site carries a written
//! justification, and crates with no unsafe at all say so in the
//! compiler's language.
//!
//! * An `unsafe {}` block or `unsafe impl` must have a `// SAFETY:`
//!   comment on the same line or on the contiguous comment/attribute
//!   lines directly above it.
//! * An `unsafe fn` may instead carry a `# Safety` section in its doc
//!   comment — that is the idiomatic place for the *caller's*
//!   obligations, while `SAFETY:` comments argue the *implementation*.
//! * A crate whose `src/` contains zero `unsafe` tokens must declare
//!   `#![forbid(unsafe_code)]` in its crate root, so the audit surface
//!   cannot grow silently: adding unsafe to such a crate is a compile
//!   error until the forbid is consciously removed (and then this rule
//!   starts demanding justifications).
//!
//! Unlike the float rule, this one applies to test code too — the
//! `GlobalAlloc` shim in `bigfloat/tests` is every bit as capable of UB
//! as kernel code.

use crate::report::Finding;
use crate::{tokens_by_line, FileKind, SourceFile, Workspace};
use std::collections::{BTreeMap, HashMap};

/// Run the rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in &ws.files {
        check_file(f, &mut out);
    }
    check_forbids(ws, &mut out);
    out
}

/// What an `unsafe` token introduces.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Site {
    Block,
    Impl,
    Fn,
    Trait,
}

fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    let by_line = tokens_by_line(file);
    for (i, t) in toks.iter().enumerate() {
        if t.text != "unsafe" {
            continue;
        }
        // Classify by the next token: `unsafe {`, `unsafe impl`,
        // `unsafe fn`, `unsafe trait`, `unsafe extern` (treated as a
        // block-like site).
        let site = match toks.get(i + 1).map(|n| n.text.as_str()) {
            Some("impl") => Site::Impl,
            Some("fn") => Site::Fn,
            Some("trait") => Site::Trait,
            _ => Site::Block,
        };
        if justified(file, &by_line, t.line, site) {
            continue;
        }
        let what = match site {
            Site::Block => "unsafe block",
            Site::Impl => "unsafe impl",
            Site::Fn => "unsafe fn",
            Site::Trait => "unsafe trait",
        };
        let hint = if site == Site::Fn {
            "`// SAFETY:` comment or `# Safety` doc section"
        } else {
            "`// SAFETY:` comment"
        };
        out.push(Finding::new(
            "unsafe-audit",
            &file.rel,
            t.line,
            format!("{what} without a {hint}"),
        ));
    }
}

/// Whether the `unsafe` at `line` has a justification: a `SAFETY:`
/// comment trailing on the line itself, or in the contiguous run of
/// comment/attribute lines directly above (`# Safety` docs also count
/// for `unsafe fn`).
fn justified(
    file: &SourceFile,
    by_line: &HashMap<usize, Vec<usize>>,
    line: usize,
    site: Site,
) -> bool {
    let accepts = |text: &str| {
        text.contains("SAFETY:") || (site == Site::Fn && text.contains("# Safety"))
    };
    if file.lexed.comments.iter().any(|c| c.line == line && accepts(&c.text)) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let comments_here: Vec<_> =
            file.lexed.comments.iter().filter(|c| c.line == l).collect();
        if !comments_here.is_empty() {
            if comments_here.iter().any(|c| accepts(&c.text)) {
                return true;
            }
            continue; // keep walking up the comment run
        }
        // An attribute line (e.g. `#[inline]`) does not break the run.
        let first_tok =
            by_line.get(&l).and_then(|idxs| idxs.first()).map(|&i| &file.lexed.tokens[i]);
        match first_tok {
            Some(t) if t.text == "#" => continue,
            // A code line (or a blank line with no comment) ends the run.
            _ => return false,
        }
    }
    false
}

/// Crates whose `src/` has zero unsafe must anchor that with
/// `#![forbid(unsafe_code)]` in the crate root (`src/lib.rs`). Binary-
/// only members are skipped — the satellite invariant is about library
/// surfaces.
fn check_forbids(ws: &Workspace, out: &mut Vec<Finding>) {
    let mut crates: BTreeMap<&str, bool> = BTreeMap::new();
    for f in &ws.files {
        if f.kind == FileKind::Src {
            let has_unsafe =
                f.lexed.tokens.iter().any(|t| t.text == "unsafe");
            *crates.entry(f.crate_name.as_str()).or_insert(false) |= has_unsafe;
        }
    }
    for (name, has_unsafe) in crates {
        if has_unsafe {
            continue;
        }
        let Some(root) = ws
            .files
            .iter()
            .find(|f| f.crate_name == name && f.rel.ends_with("src/lib.rs"))
        else {
            continue;
        };
        if !has_forbid_unsafe(root) {
            out.push(Finding::new(
                "unsafe-audit",
                &root.rel,
                1,
                format!("crate `{name}` has no unsafe code but lacks `#![forbid(unsafe_code)]`"),
            ));
        }
    }
}

/// Look for the inner attribute `#![forbid(unsafe_code)]` (possibly
/// with other lints in the same `forbid`).
fn has_forbid_unsafe(file: &SourceFile) -> bool {
    let toks = &file.lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.text == "#"
            && toks.get(i + 1).is_some_and(|a| a.text == "!")
            && toks.get(i + 2).is_some_and(|a| a.text == "[")
        {
            if let Some(close) = file.matching(i + 2) {
                let inner: Vec<&str> =
                    toks[i + 3..close].iter().map(|t| t.text.as_str()).collect();
                if inner.first() == Some(&"forbid") && inner.contains(&"unsafe_code") {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileKind, SourceFile};

    fn file(src: &str) -> SourceFile {
        SourceFile::new("crates/x/src/lib.rs".into(), "x".into(), FileKind::Src, src)
    }

    #[test]
    fn safety_comment_above_accepted() {
        let f = file("fn f() {\n    // SAFETY: ptr is valid for the whole call.\n    unsafe { g() }\n}");
        let mut out = Vec::new();
        check_file(&f, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn attribute_does_not_break_comment_run() {
        let f = file(
            "// SAFETY: the impl upholds Send because T is owned.\n#[allow(dead_code)]\nunsafe impl Send for X {}",
        );
        let mut out = Vec::new();
        check_file(&f, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn missing_safety_flagged() {
        let f = file("fn f() {\n    unsafe { g() }\n}");
        let mut out = Vec::new();
        check_file(&f, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].msg.contains("unsafe block"));
    }

    #[test]
    fn unsafe_fn_accepts_safety_doc() {
        let f = file("/// Does things.\n///\n/// # Safety\n/// Caller must keep `p` alive.\nunsafe fn g(p: *const u8) {}");
        let mut out = Vec::new();
        check_file(&f, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn forbid_attr_detected() {
        assert!(has_forbid_unsafe(&file("#![forbid(unsafe_code)]\npub fn f() {}")));
        assert!(!has_forbid_unsafe(&file("#![deny(missing_docs)]\npub fn f() {}")));
    }
}
