//! Rule 3 — **lock-discipline**: extract the lock-acquisition graph of
//! the cache and scheduler layers and prove the informal ordering
//! arguments in their module docs.
//!
//! Two acquisition forms are modeled inside [`crate::LOCK_SCOPE`]:
//!
//! * `ShardLock::acquire(..)` — the cache's advisory file lock. All
//!   shard locks are one logical lock class (`shard`): the invariant in
//!   `cache/lock.rs` is *at most one shard lock held at a time*, across
//!   all shards, because a process that holds shard A and blocks on
//!   shard B deadlocks against a peer doing the reverse.
//! * `<path>.lock()` — a `std::sync::Mutex` (or the stdio lock — both
//!   obey the same discipline). Locks are named by their receiver path
//!   with a leading `self.` stripped, so `self.shared.state.lock()` in
//!   a method and `shared.state.lock()` in the free worker loop resolve
//!   to the same node.
//!
//! Guard lifetimes are inferred structurally:
//!
//! * a `let`-bound guard whose call chain is only lock adapters
//!   (`.unwrap()`, `.expect(..)`, `.unwrap_or_else(..)`, `?`) lives to
//!   the end of its enclosing block;
//! * a chain that keeps going (`.lock().unwrap().take()`) is a
//!   temporary: the guard drops at the end of the statement (or of the
//!   `if let` body it conditions, where temporaries extend);
//! * `drop(guard)` ends the scope early.
//!
//! The analysis is interprocedural: each function gets a summary of the
//! locks it (transitively) acquires, seeded with
//! [`crate::LOCKING_ENTRY_POINTS`] ⇒ `shard`, and every call made while
//! a lock is held contributes edges `held → acquired`. Findings:
//! nested shard scopes (including via calls — the advisory lock
//! self-deadlocks), any lock re-acquired while already held, and
//! lock-order cycles between distinct locks.
//!
//! Calls inside `spawn(..)` argument lists are *not* charged to the
//! spawning function: the closure runs on another thread, so locks held
//! here are not held there. The spawned function body is still analyzed
//! on its own.

use crate::report::Finding;
use crate::{collect_fns, SourceFile, TokKind, Workspace, LOCKING_ENTRY_POINTS, LOCK_SCOPE};
use std::collections::{BTreeMap, BTreeSet};

/// `cache/lock.rs` defines the shard-lock primitive itself; the
/// `File::lock` call inside `ShardLock::acquire` *is* the model's
/// `shard` acquisition, not a separate mutex.
const PRIMITIVE_FILE: &str = "crates/raptor-lab/src/cache/lock.rs";

/// Chain methods that keep the guard alive without consuming it.
const GUARD_ADAPTERS: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Keywords that look like calls (`if (..)`, `while (..)`) but are not.
const NOT_CALLS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "move", "in", "as", "let", "else",
    "break", "continue", "unsafe", "where", "impl", "dyn",
];

/// One lock acquisition inside a function body.
struct Acq {
    lock: String,
}

/// One call made inside a function body, with the locks held at the
/// call site.
struct Call {
    callee: String,
    held: Vec<String>,
    line: usize,
    /// Call site is inside a `#[cfg(test)]` region — summaries still
    /// propagate, but no finding is reported there.
    in_test: bool,
}

/// Per-function facts extracted by the intraprocedural walk.
struct Summary {
    file: String,
    acquires: Vec<Acq>,
    calls: Vec<Call>,
}

/// A guard currently live during the walk.
struct Guard {
    /// Binding name for `drop(name)` detection; None for temporaries.
    name: Option<String>,
    lock: String,
    /// First token index at which the guard is no longer held.
    end: usize,
}

/// Run the rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    // fn name -> merged summaries (same-name functions are merged
    // conservatively; the scope is small enough that names are unique
    // in practice).
    let mut summaries: BTreeMap<String, Vec<Summary>> = BTreeMap::new();
    for f in &ws.files {
        if f.rel == PRIMITIVE_FILE || !LOCK_SCOPE.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        for item in collect_fns(f) {
            let Some(body) = item.body else { continue };
            let s = analyze_fn(f, body, &mut out);
            summaries.entry(item.name.clone()).or_default().push(s);
        }
    }

    // Transitive acquisition sets, seeded with the declared entry points.
    let mut acq: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for ep in LOCKING_ENTRY_POINTS {
        acq.entry((*ep).to_string()).or_default().insert("shard".into());
    }
    for (name, sums) in &summaries {
        let entry = acq.entry(name.clone()).or_default();
        for s in sums {
            for a in &s.acquires {
                entry.insert(a.lock.clone());
            }
        }
    }
    // Fixpoint over the call graph (bounded: the lattice is finite).
    for _ in 0..summaries.len() + 2 {
        let mut changed = false;
        for (name, sums) in &summaries {
            let mut add = BTreeSet::new();
            for s in sums {
                for c in &s.calls {
                    if let Some(callee_locks) = acq.get(&c.callee) {
                        add.extend(callee_locks.iter().cloned());
                    }
                }
            }
            let entry = acq.entry(name.clone()).or_default();
            for l in add {
                changed |= entry.insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // Edges held -> acquired, from direct nesting and from calls; plus
    // the nested-shard and re-entry findings.
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for sums in summaries.values() {
        for s in sums {
            for c in &s.calls {
                let Some(callee_locks) = acq.get(&c.callee) else { continue };
                for held in &c.held {
                    for l2 in callee_locks {
                        if c.in_test {
                            continue;
                        }
                        if held == l2 {
                            let msg = if held == "shard" {
                                format!(
                                    "shard lock held across call to `{}`, which acquires a \
                                     shard lock (self-deadlock on the advisory lock)",
                                    c.callee
                                )
                            } else {
                                format!(
                                    "lock `{held}` held across call to `{}`, which acquires \
                                     `{l2}` (re-entrant deadlock)",
                                    c.callee
                                )
                            };
                            out.push(Finding::new("lock-discipline", &s.file, c.line, msg));
                        } else {
                            edges
                                .entry((held.clone(), l2.clone()))
                                .or_insert((s.file.clone(), c.line));
                        }
                    }
                }
            }
        }
    }

    // Lock-order cycles among distinct locks.
    out.extend(find_cycles(&edges));
    out
}

/// Walk one function body, recording acquisitions, calls-while-held,
/// and direct nesting findings.
fn analyze_fn(file: &SourceFile, body: (usize, usize), out: &mut Vec<Finding>) -> Summary {
    let toks = &file.lexed.tokens;
    let mut sum = Summary { file: file.rel.clone(), acquires: Vec::new(), calls: Vec::new() };
    let mut guards: Vec<Guard> = Vec::new();
    // Stack of open `{` token indices, innermost last (starts with the
    // body brace itself).
    let mut blocks: Vec<usize> = vec![body.0];
    let mut i = body.0 + 1;
    while i < body.1 {
        guards.retain(|g| g.end > i);
        let t = &toks[i];
        match t.text.as_str() {
            "{" => blocks.push(i),
            "}" => {
                blocks.pop();
            }
            // Nested `fn` items are separate analyses; skip their bodies
            // so a guard live here is not charged to code that runs on a
            // plain call later.
            "fn" if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) => {
                if let Some(end) = item_body_end(file, i, body.1) {
                    i = end + 1;
                    continue;
                }
            }
            // `spawn(..)`: the closure argument runs on another thread —
            // record nothing inside it.
            "spawn" if toks.get(i + 1).is_some_and(|n| n.text == "(") => {
                if let Some(close) = file.matching(i + 1) {
                    i = close + 1;
                    continue;
                }
            }
            // `drop(guard)` ends a scope early.
            "drop"
                if toks.get(i + 1).is_some_and(|n| n.text == "(")
                    && toks.get(i + 3).is_some_and(|n| n.text == ")") =>
            {
                let name = &toks[i + 2].text;
                guards.retain(|g| g.name.as_deref() != Some(name.as_str()));
                i += 4;
                continue;
            }
            _ => {}
        }

        if let Some((lock, after)) = acquisition_at(file, i) {
            let line = t.line;
            for g in &guards {
                if g.lock == "shard" && lock == "shard" {
                    emit(file, out, line, "nested shard-lock scopes: a shard lock is acquired while another is held".into());
                } else if g.lock == lock {
                    emit(file, out, line, format!("lock `{lock}` acquired while already held"));
                }
            }
            let (name, end) = guard_scope(file, i, after, body.1, &blocks);
            sum.acquires.push(Acq { lock: lock.clone() });
            guards.push(Guard { name, lock, end });
            i = after;
            continue;
        }

        // Every call is recorded (even with nothing held): summaries
        // need the full call graph for transitive acquisition sets.
        if let Some(callee) = call_at(file, i) {
            sum.calls.push(Call {
                callee,
                held: guards.iter().map(|g| g.lock.clone()).collect(),
                line: t.line,
                in_test: file.in_test(t.line),
            });
        }
        i += 1;
    }
    sum
}

/// If token `i` starts an acquisition, return the lock name and the
/// index just past the `.lock()` / `acquire(..)` call.
fn acquisition_at(file: &SourceFile, i: usize) -> Option<(String, usize)> {
    let toks = &file.lexed.tokens;
    let t = &toks[i];
    // `ShardLock::acquire(..)`
    if t.text == "ShardLock"
        && toks.get(i + 1).is_some_and(|n| n.text == "::")
        && toks.get(i + 2).is_some_and(|n| n.text == "acquire")
        && toks.get(i + 3).is_some_and(|n| n.text == "(")
    {
        let close = file.matching(i + 3)?;
        return Some(("shard".into(), close + 1));
    }
    // `<path>.lock()`
    if t.text == "lock"
        && i >= 1
        && toks[i - 1].text == "."
        && toks.get(i + 1).is_some_and(|n| n.text == "(")
        && toks.get(i + 2).is_some_and(|n| n.text == ")")
    {
        let lock = receiver_path(file, i - 1)?;
        return Some((lock, i + 3));
    }
    None
}

/// Reconstruct the receiver path of a `.lock()` call by walking left
/// over `ident . ident` chains; index expressions (`slots[i]`) collapse
/// to their base. A leading `self.` is stripped.
fn receiver_path(file: &SourceFile, dot: usize) -> Option<String> {
    let toks = &file.lexed.tokens;
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot; // points at the `.` before `lock`
    loop {
        // The component left of `j`.
        let mut k = j.checked_sub(1)?;
        if toks[k].text == "]" {
            k = file.matching(k)?.checked_sub(1)?; // base of `base[...]`
        } else if toks[k].text == ")" {
            return None; // call result receiver: not a stable lock name
        }
        if toks[k].kind != TokKind::Ident {
            return None;
        }
        parts.push(toks[k].text.clone());
        if k >= 1 && toks[k - 1].text == "." {
            j = k - 1;
            continue;
        }
        break;
    }
    parts.reverse();
    if parts.first().is_some_and(|p| p == "self") {
        parts.remove(0);
    }
    if parts.is_empty() {
        None
    } else {
        Some(parts.join("."))
    }
}

/// Classify the guard born at acquisition ending at token `after`:
/// returns (binding name, first token index where it is dropped).
fn guard_scope(
    file: &SourceFile,
    acq_idx: usize,
    after: usize,
    body_end: usize,
    blocks: &[usize],
) -> (Option<String>, usize) {
    let toks = &file.lexed.tokens;
    // Follow the adapter chain: `?` and `.unwrap()`-style calls.
    let mut j = after;
    let mut chain_consumes = false;
    loop {
        match toks.get(j).map(|t| t.text.as_str()) {
            Some("?") => j += 1,
            Some(".") => {
                let is_adapter = toks
                    .get(j + 1)
                    .is_some_and(|m| GUARD_ADAPTERS.contains(&m.text.as_str()));
                if is_adapter && toks.get(j + 2).is_some_and(|p| p.text == "(") {
                    j = file.matching(j + 2).map(|c| c + 1).unwrap_or(j + 3);
                } else {
                    chain_consumes = true; // `.take()`, `.as_deref()`, ...
                    break;
                }
            }
            _ => break,
        }
    }
    let binding = let_binding(file, acq_idx);
    if binding.is_some() && !chain_consumes {
        // Block-scoped guard: lives to the innermost enclosing `}`.
        let end = blocks
            .last()
            .and_then(|&b| file.matching(b))
            .unwrap_or(body_end);
        return (binding, end);
    }
    // Temporary: dies at the statement's `;` at relative depth 0, or at
    // the close of the first depth-0 `{` (an `if let` body keeps the
    // temporary alive through the body).
    let mut depth = 0i32;
    let mut k = after;
    while k < body_end {
        match toks[k].text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => {
                if depth == 0 {
                    let end = file.matching(k).unwrap_or(body_end);
                    return (None, end);
                }
                depth += 1;
            }
            "}" => depth -= 1,
            ";" if depth == 0 => return (None, k),
            _ => {}
        }
        if depth < 0 {
            break;
        }
        k += 1;
    }
    (None, k)
}

/// If the statement containing `acq_idx` is a `let`, return the bound
/// name (first plain identifier of the pattern).
fn let_binding(file: &SourceFile, acq_idx: usize) -> Option<String> {
    let toks = &file.lexed.tokens;
    let mut k = acq_idx;
    while k > 0 {
        k -= 1;
        match toks[k].text.as_str() {
            ";" | "{" | "}" => return None,
            ")" | "]" => k = file.matching(k)?, // skip argument lists leftward
            "let" => {
                let mut m = k + 1;
                while toks.get(m).is_some_and(|t| t.text == "mut") {
                    m += 1;
                }
                let t = toks.get(m)?;
                if t.kind == TokKind::Ident {
                    return Some(t.text.clone());
                }
                return None; // tuple/struct pattern: no single name
            }
            _ => {}
        }
    }
    None
}

/// Token index of the closing brace of the item starting at `fn_idx`
/// (used to skip nested fn items).
fn item_body_end(file: &SourceFile, fn_idx: usize, limit: usize) -> Option<usize> {
    let toks = &file.lexed.tokens;
    let mut k = fn_idx + 1;
    while k < limit {
        match toks[k].text.as_str() {
            "{" => return file.matching(k),
            ";" => return Some(k),
            "(" | "[" => k = file.matching(k)?,
            _ => {}
        }
        k += 1;
    }
    None
}

/// If token `i` is a call head (`name(..)`, not a macro, keyword, or
/// definition), return the bare callee name.
fn call_at(file: &SourceFile, i: usize) -> Option<String> {
    let toks = &file.lexed.tokens;
    let t = &toks[i];
    if t.kind != TokKind::Ident || NOT_CALLS.contains(&t.text.as_str()) {
        return None;
    }
    let next = toks.get(i + 1)?;
    if next.text != "(" {
        return None; // macros (`name!`) and plain idents are not calls
    }
    // Struct-literal-ish and definition contexts are excluded by the
    // keyword list; `lock`/`acquire` are modeled as acquisitions.
    if t.text == "lock" && i >= 1 && toks[i - 1].text == "." {
        return None;
    }
    if t.text == "acquire" && i >= 2 && toks[i - 1].text == "::" && toks[i - 2].text == "ShardLock"
    {
        return None;
    }
    Some(t.text.clone())
}

/// DFS cycle detection over the distinct-lock edge set; one finding per
/// cycle discovered (rooted at its smallest node, so reports are
/// deterministic).
fn find_cycles(edges: &BTreeMap<(String, String), (String, usize)>) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    let mut out = Vec::new();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    let starts: Vec<&str> = adj.keys().copied().collect();
    for start in starts {
        if done.contains(start) {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        let mut path = vec![start];
        let mut on_path: BTreeSet<&str> = [start].into();
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let succs = adj.get(node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *idx >= succs.len() {
                done.insert(node);
                on_path.remove(node);
                path.pop();
                stack.pop();
                continue;
            }
            let next = succs[*idx];
            *idx += 1;
            if on_path.contains(next) {
                // Found a cycle: path suffix from `next`.
                let pos = path.iter().position(|&n| n == next).unwrap_or(0);
                let mut cycle: Vec<&str> = path[pos..].to_vec();
                cycle.push(next);
                let (file, line) = edges
                    .get(&(path[path.len() - 1].to_string(), next.to_string()))
                    .cloned()
                    .unwrap_or_default();
                out.push(Finding::new(
                    "lock-discipline",
                    &file,
                    line,
                    format!("lock-order cycle: {}", cycle.join(" -> ")),
                ));
                continue;
            }
            if done.contains(next) {
                continue;
            }
            stack.push((next, 0));
            path.push(next);
            on_path.insert(next);
        }
    }
    out
}

/// Push a finding unless the site is test code.
fn emit(file: &SourceFile, out: &mut Vec<Finding>, line: usize, msg: String) {
    if file.in_test(line) {
        return;
    }
    out.push(Finding::new("lock-discipline", &file.rel, line, msg));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{collect_fns, FileKind, SourceFile};

    fn analyze(src: &str) -> (Vec<Finding>, Summary) {
        let f = SourceFile::new(
            "crates/raptor-lab/src/cache/x.rs".into(),
            "raptor-lab".into(),
            FileKind::Src,
            src,
        );
        let fns = collect_fns(&f);
        let mut out = Vec::new();
        let s = analyze_fn(&f, fns[0].body.unwrap(), &mut out);
        (out, s)
    }

    #[test]
    fn nested_shard_acquire_flagged() {
        let (out, _) = analyze(
            "fn f(a: &Path, b: &Path) {\n    let _x = ShardLock::acquire(a).unwrap();\n    let _y = ShardLock::acquire(b).unwrap();\n}",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("nested shard-lock"));
    }

    #[test]
    fn sequential_scopes_are_clean() {
        let (out, s) = analyze(
            "fn f(a: &Path) {\n    {\n        let _x = ShardLock::acquire(a)?;\n    }\n    let _y = ShardLock::acquire(a)?;\n}",
        );
        assert!(out.is_empty(), "{out:?}");
        assert_eq!(s.acquires.len(), 2);
    }

    #[test]
    fn temporary_guard_dies_at_statement() {
        let (out, _) = analyze(
            "fn f(m: &Mutex<u32>) {\n    let v = m.lock().unwrap().checked_add(1);\n    let w = m.lock().unwrap().checked_add(2);\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn persistent_guard_blocks_reacquire() {
        let (out, _) = analyze(
            "fn f(m: &Mutex<u32>) {\n    let g = m.lock().unwrap();\n    let h = m.lock().unwrap();\n}",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("already held"));
    }

    #[test]
    fn drop_ends_scope() {
        let (out, _) = analyze(
            "fn f(m: &Mutex<u32>) {\n    let g = m.lock().unwrap();\n    drop(g);\n    let h = m.lock().unwrap();\n}",
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn calls_record_held_locks() {
        let (_, s) = analyze(
            "fn f(m: &Mutex<u32>) {\n    let g = self.state.lock().unwrap();\n    helper(1);\n}",
        );
        let call = s.calls.iter().find(|c| c.callee == "helper").unwrap();
        assert_eq!(call.held, ["state"]);
    }

    #[test]
    fn spawn_args_not_charged() {
        let (_, s) = analyze(
            "fn f(m: &Mutex<u32>) {\n    let g = m.lock().unwrap();\n    thread::spawn(move || helper(1));\n}",
        );
        assert!(s.calls.iter().all(|c| c.callee != "helper"), "spawned call must not be recorded");
    }
}
