//! Rule 4 — **batch-pairing**: every public `*_batch` kernel keeps its
//! contract visible.
//!
//! The batch tier's whole claim is *bit-identity with the scalar path*
//! (see `ROADMAP.md`): a `foo_batch` without a scalar `foo` twin has
//! nothing to be identical *to*, and a pair nobody differential-tests
//! can drift silently. So for each public `fn *_batch` (including
//! methods of public traits) outside test code:
//!
//! * a scalar twin — a function of the same name minus `_batch` — must
//!   exist in the same crate;
//! * the batch name must be referenced from test code somewhere in the
//!   workspace: a `#[cfg(test)]` region, an integration-test/bench
//!   file, or the `raptor-examples` crate (home of the `batch_diff`
//!   smoke).

use crate::report::Finding;
use crate::{collect_fns, FileKind, SourceFile, TokKind, Workspace};
use std::collections::{BTreeMap, BTreeSet};

/// Run the rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    // (crate, fn name) -> first definition site, public batch fns only.
    let mut batch: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    // All fn names per crate (any visibility) for twin lookup.
    let mut names: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for f in &ws.files {
        if f.kind != FileKind::Src {
            continue;
        }
        let pub_traits = pub_trait_ranges(f);
        for item in collect_fns(f) {
            names.entry(f.crate_name.clone()).or_default().insert(item.name.clone());
            if !item.name.ends_with("_batch") || f.in_test(item.line) {
                continue;
            }
            let in_pub_trait =
                pub_traits.iter().any(|&(s, e)| s < item.fn_idx && item.fn_idx < e);
            if !(is_pub_fn(f, item.fn_idx) || in_pub_trait) {
                continue;
            }
            batch
                .entry((f.crate_name.clone(), item.name.clone()))
                .or_insert((f.rel.clone(), item.line));
        }
    }

    let mut out = Vec::new();
    for ((crate_name, name), (rel, line)) in &batch {
        let scalar = name.trim_end_matches("_batch");
        let has_twin = names.get(crate_name).is_some_and(|n| n.contains(scalar));
        if !has_twin {
            out.push(Finding::new(
                "batch-pairing",
                rel,
                *line,
                format!("pub `{name}` has no scalar twin `{scalar}` in crate `{crate_name}`"),
            ));
        }
        if !referenced_by_tests(ws, name, rel, *line) {
            out.push(Finding::new(
                "batch-pairing",
                rel,
                *line,
                format!(
                    "pub `{name}` is not referenced by any differential test or smoke \
                     (tests, #[cfg(test)], or raptor-examples)"
                ),
            ));
        }
    }
    out
}

/// Whether the `fn` at `fn_idx` is `pub` (unrestricted). `pub(crate)`
/// and friends are internal API and exempt from pairing.
fn is_pub_fn(file: &SourceFile, fn_idx: usize) -> bool {
    let toks = &file.lexed.tokens;
    let mut k = fn_idx;
    while k > 0 {
        k -= 1;
        match toks[k].text.as_str() {
            "unsafe" | "const" | "async" | "extern" => continue,
            ")" => {
                // `pub(crate)` / `pub(super)`: restricted visibility.
                let Some(open) = file.matching(k) else { return false };
                if open >= 1 && toks[open - 1].text == "pub" {
                    return false;
                }
                return false;
            }
            "pub" => return true,
            _ => {
                // Extern ABI string (`extern "C"`) is the only non-ident
                // modifier; anything else ends the modifier run.
                if toks[k].kind == TokKind::Str {
                    continue;
                }
                return false;
            }
        }
    }
    false
}

/// Token-index ranges `(open, close)` of `pub trait` bodies.
fn pub_trait_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    let toks = &file.lexed.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.text != "trait" || !(i >= 1 && toks[i - 1].text == "pub") {
            continue;
        }
        let mut k = i + 1;
        while let Some(t) = toks.get(k) {
            match t.text.as_str() {
                "{" => {
                    if let Some(close) = file.matching(k) {
                        out.push((k, close));
                    }
                    break;
                }
                ";" => break,
                "(" | "[" => k = file.matching(k).unwrap_or(k),
                _ => {}
            }
            k += 1;
        }
    }
    out
}

/// Whether `name` appears as an identifier anywhere test-shaped: a Test
/// file, a `#[cfg(test)]` region, or `raptor-examples` — excluding the
/// definition site itself.
fn referenced_by_tests(ws: &Workspace, name: &str, def_rel: &str, def_line: usize) -> bool {
    for f in &ws.files {
        for t in &f.lexed.tokens {
            if t.kind != TokKind::Ident || t.text != name {
                continue;
            }
            if f.rel == def_rel && t.line == def_line {
                continue; // the definition itself
            }
            if f.kind == FileKind::Test
                || f.crate_name == "raptor-examples"
                || f.in_test(t.line)
            {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FileKind, SourceFile, Workspace};

    fn ws(files: Vec<(&str, &str, FileKind, &str)>) -> Workspace {
        Workspace {
            files: files
                .into_iter()
                .map(|(rel, krate, kind, src)| {
                    SourceFile::new(rel.into(), krate.into(), kind, src)
                })
                .collect(),
        }
    }

    #[test]
    fn paired_and_tested_is_clean() {
        let w = ws(vec![(
            "crates/hydro/src/k.rs",
            "hydro",
            FileKind::Src,
            "pub fn flux(u: f64) -> f64 { u }\npub fn flux_batch(u: &[f64]) {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn diff() { super::flux_batch(&[]); }\n}",
        )]);
        assert!(check(&w).is_empty());
    }

    #[test]
    fn missing_twin_flagged() {
        let w = ws(vec![(
            "crates/hydro/src/k.rs",
            "hydro",
            FileKind::Src,
            "pub fn flux_batch(u: &[f64]) {}\n#[cfg(test)]\nmod t { #[test] fn d() { super::flux_batch(&[]); } }",
        )]);
        let out = check(&w);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("no scalar twin"));
    }

    #[test]
    fn untested_batch_flagged() {
        let w = ws(vec![(
            "crates/hydro/src/k.rs",
            "hydro",
            FileKind::Src,
            "pub fn flux(u: f64) -> f64 { u }\npub fn flux_batch(u: &[f64]) {}",
        )]);
        let out = check(&w);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].msg.contains("not referenced"));
    }

    #[test]
    fn private_batch_exempt() {
        let w = ws(vec![(
            "crates/hydro/src/k.rs",
            "hydro",
            FileKind::Src,
            "fn helper_batch(u: &[f64]) {}\npub(crate) fn also_batch(u: &[f64]) {}",
        )]);
        assert!(check(&w).is_empty());
    }

    #[test]
    fn examples_reference_counts() {
        let w = ws(vec![
            (
                "crates/hydro/src/k.rs",
                "hydro",
                FileKind::Src,
                "pub fn flux(u: f64) -> f64 { u }\npub fn flux_batch(u: &[f64]) {}",
            ),
            (
                "examples/src/bin/batch_diff.rs",
                "raptor-examples",
                FileKind::Src,
                "fn main() { hydro::flux_batch(&[]); }",
            ),
        ]);
        assert!(check(&w).is_empty());
    }
}
