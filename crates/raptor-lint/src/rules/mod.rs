//! The four repo-specific rules. Each module exposes
//! `check(&Workspace) -> Vec<Finding>`.

pub mod batch_pair;
pub mod locks;
pub mod tracked;
pub mod unsafe_audit;
