//! Rule 1 — **tracked-escape**: no raw `f64`/`f32` arithmetic or std
//! float intrinsics inside kernel crates outside the `Real` abstraction.
//!
//! A raw `a * b` on `f64` inside `hydro`/`incomp`/`eos`/`raptor-ir`
//! silently escapes truncation *and* the op counters, corrupting both
//! fidelity and the roofline speedup model — and no dynamic test can see
//! it (the untruncated run is bit-identical either way).
//!
//! Without a type checker the rule works from **float evidence**, which
//! is sound for Rust's coherence rules: a float *literal* (`0.5`) can
//! only type as `f32`/`f64`, there is no `f64 ⊙ R` operator impl, and
//! `as f64`, `.to_f64()`, and `: f64` declarations name the type
//! outright. Per function the rule collects the set of known-float
//! bindings (parameters and `let`s with float-typed annotations or
//! float-evident initializers), then flags every binary arithmetic
//! operator (`+ - * / %` and compound assignments) with a float-evident
//! operand, every math-method call (`.sqrt()`, `.exp()`, `.mul_add()`,
//! ...) on a float-evident receiver, and every `f64::<math>` path call.
//! Unknown-typed operands are *not* flagged (generic `R` kernels read as
//! unknown), so the rule under-approximates rather than drowning real
//! escapes in noise.
//!
//! Exemptions: `#[cfg(test)]` regions and `tests/`/`benches/` files
//! (differential oracles legitimately compute natively); assertion /
//! formatting macro arguments (diagnostics, not kernel math);
//! `R::from_f64(...)` argument lists (that *is* the lifting boundary);
//! and anything covered by a `// lint: allow(native-float, reason)`
//! annotation.

use crate::lexer::{TokKind, Token};
use crate::{collect_fns, Finding, SourceFile, Workspace, KERNEL_CRATES};
use std::collections::HashMap;

/// Binary arithmetic operators (and their compound assignments).
const BIN_OPS: &[&str] = &["+", "-", "*", "/", "%", "+=", "-=", "*=", "/=", "%="];

/// Keywords that make a following `-`/`*`/`&` a unary/prefix operator.
const EXPR_KEYWORDS: &[&str] = &[
    "return", "as", "in", "if", "else", "match", "break", "continue", "while", "loop", "move",
    "where", "unsafe", "let", "mut", "ref", "dyn", "yield",
];

/// Instrumented math operations: calling the std float version of one of
/// these bypasses truncation *and* the op counters. (Exact sign/select
/// ops — `abs`, `min`, `max`, `copysign` — are deliberately absent: they
/// are uncounted classification in both the scalar and batch paths.)
const MATH_METHODS: &[&str] = &[
    "sqrt", "powi", "powf", "exp", "exp2", "exp_m1", "ln", "ln_1p", "log10", "log2", "sin", "cos",
    "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh", "tanh", "floor", "ceil", "round",
    "trunc", "mul_add", "recip", "hypot", "cbrt",
];

/// Macros whose argument lists are diagnostics, not kernel math.
const DIAG_MACROS: &[&str] = &[
    "assert", "assert_eq", "assert_ne", "debug_assert", "debug_assert_eq", "debug_assert_ne",
    "panic", "format", "println", "print", "eprintln", "eprint", "write", "writeln",
    "unreachable", "todo", "unimplemented",
];

/// What we know about a binding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FloatKind {
    /// `f64` / `f32` scalar.
    Scalar,
    /// Slice/array/Vec of floats: indexing yields a float.
    Slice,
}

/// Run the rule over the workspace.
pub fn check(ws: &Workspace) -> Vec<Finding> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !KERNEL_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        if file.kind != crate::FileKind::Src {
            continue;
        }
        check_file(file, &mut out);
    }
    out
}

/// Lint one already-lexed file (fixture-test entry point).
pub fn check_file(file: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &file.lexed.tokens;
    // `*_batch` fast paths are exempt by construction: the batch tier is
    // deliberately monomorphized plain-f64 — its correctness contract is
    // *bit-identity with the Tracked scalar twin*, and the batch-pairing
    // rule pins every such kernel to a twin plus a differential test.
    // Tracking dispatch there would defeat the tier's purpose; the
    // pairing rule is what keeps the exemption sound.
    let fns = collect_fns(file);
    let mut batch_bodies: Vec<(usize, usize)> = fns
        .iter()
        .filter(|f| f.name.ends_with("_batch"))
        .filter_map(|f| f.body)
        .collect();
    batch_bodies.sort_unstable();
    let in_batch = |idx: usize| batch_bodies.iter().any(|&(s, e)| s <= idx && idx <= e);
    // File-wide pass with no known bindings: catches const items and any
    // code outside fn bodies (literal evidence only), skipping batch
    // bodies.
    let mut start = 0usize;
    for &(bo, bc) in &batch_bodies {
        if bo > start {
            scan_range(file, start, bo, &HashMap::new(), out);
        }
        start = start.max(bc + 1);
    }
    if start < toks.len() {
        scan_range(file, start, toks.len(), &HashMap::new(), out);
    }
    // Per-fn passes with the known-float binding sets.
    for f in fns {
        if f.name.ends_with("_batch") || in_batch(f.fn_idx) {
            continue;
        }
        let Some((bopen, bclose)) = f.body else { continue };
        let mut known = params_of(file, f.params);
        // Two passes so a `let` can use one declared later in rare
        // reordered code; lets normally flow forward.
        for _ in 0..2 {
            collect_lets(file, bopen + 1, bclose, &mut known);
        }
        scan_range(file, bopen + 1, bclose, &known, out);
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.dedup_by(|a, b| a.file == b.file && a.line == b.line && a.msg == b.msg);
}

/// Known-float bindings from a parameter list.
fn params_of(file: &SourceFile, (popen, pclose): (usize, usize)) -> HashMap<String, FloatKind> {
    let toks = &file.lexed.tokens;
    let mut known = HashMap::new();
    let mut i = popen + 1;
    while i < pclose {
        // One parameter: tokens up to the next top-level comma.
        let start = i;
        let mut depth = 0i32;
        while i < pclose {
            match toks[i].text.as_str() {
                "(" | "[" | "{" | "<" => depth += 1,
                ")" | "]" | "}" | ">" => depth -= 1,
                "," if depth <= 0 => break,
                _ => {}
            }
            i += 1;
        }
        param_binding(&toks[start..i], &mut known);
        i += 1;
    }
    known
}

/// Extract `name: Type` from one parameter's tokens.
fn param_binding(param: &[Token], known: &mut HashMap<String, FloatKind>) {
    let Some(colon) = param.iter().position(|t| t.text == ":") else { return };
    // Pattern side: `ident` or `mut ident` only (destructuring skipped).
    let pat: Vec<&Token> =
        param[..colon].iter().filter(|t| t.text != "mut" && t.text != "ref").collect();
    let [name] = pat[..] else { return };
    if name.kind != TokKind::Ident {
        return;
    }
    if let Some(kind) = classify_type(&param[colon + 1..]) {
        known.insert(name.text.clone(), kind);
    }
}

/// Classify a type annotation's tokens as float scalar / float slice.
fn classify_type(ty: &[Token]) -> Option<FloatKind> {
    let texts: Vec<&str> = ty.iter().map(|t| t.text.as_str()).collect();
    let stripped: Vec<&str> =
        texts.iter().copied().filter(|t| *t != "&" && *t != "mut").collect();
    match stripped[..] {
        ["f64"] | ["f32"] => return Some(FloatKind::Scalar),
        _ => {}
    }
    // `[f64]`, `[f64; N]`, `Vec<f64>`, `&mut [f64]` ...
    for w in stripped.windows(2) {
        if (w[0] == "[" && (w[1] == "f64" || w[1] == "f32"))
            || (w[0] == "<" && (w[1] == "f64" || w[1] == "f32")
                && stripped.first() == Some(&"Vec"))
        {
            return Some(FloatKind::Slice);
        }
    }
    None
}

/// Scan a body for `let` bindings, growing the known-float set.
fn collect_lets(
    file: &SourceFile,
    start: usize,
    end: usize,
    known: &mut HashMap<String, FloatKind>,
) {
    let toks = &file.lexed.tokens;
    let mut i = start;
    while i < end {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let Some(name) = toks.get(j) else { break };
        if name.kind != TokKind::Ident {
            i = j; // destructuring let — skip
            continue;
        }
        j += 1;
        // Optional type annotation up to `=` or `;`.
        let mut ty_range: Option<(usize, usize)> = None;
        if toks.get(j).is_some_and(|t| t.text == ":") {
            let ty_start = j + 1;
            let mut depth = 0i32;
            let mut k = ty_start;
            while k < end {
                match toks[k].text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "=" | ";" if depth <= 0 => break,
                    _ => {}
                }
                k += 1;
            }
            ty_range = Some((ty_start, k));
            j = k;
        }
        if let Some((s, e)) = ty_range {
            if let Some(kind) = classify_type(&toks[s..e]) {
                known.insert(name.text.clone(), kind);
            }
            if toks.get(j).is_some_and(|t| t.text == ";") {
                i = j + 1;
                continue;
            }
        }
        if toks.get(j).is_none_or(|t| t.text != "=") {
            i = j;
            continue;
        }
        // Initializer: to the `;` at this depth.
        let init_start = j + 1;
        let mut depth = 0i32;
        let mut k = init_start;
        while k < end {
            match toks[k].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        if ty_range.is_none() && float_evidence(file, init_start, k, known).is_some() {
            let is_vec = toks.get(init_start).is_some_and(|t| t.text == "vec")
                || toks[init_start..k.min(toks.len())]
                    .first()
                    .is_some_and(|t| t.text == "[");
            known
                .insert(name.text.clone(), if is_vec { FloatKind::Slice } else { FloatKind::Scalar });
        }
        i = k + 1;
    }
}

/// Search a token range for float evidence. Returns the evidence
/// description, or None. Skips `from_f64(...)` argument lists (the
/// lifting boundary) and nested call argument lists (a call's return
/// type is unknown even if its arguments are floats).
fn float_evidence(
    file: &SourceFile,
    start: usize,
    end: usize,
    known: &HashMap<String, FloatKind>,
) -> Option<String> {
    let toks = &file.lexed.tokens;
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        match t.kind {
            TokKind::Float => return Some(format!("float literal `{}`", t.text)),
            TokKind::Ident => {
                let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
                let next = toks.get(i + 1).map(|t| t.text.as_str());
                if t.text == "to_f64" && next == Some("(") {
                    return Some("`.to_f64()` result".into());
                }
                if t.text == "as" && matches!(next, Some("f64" | "f32")) {
                    return Some(format!("`as {}` cast", toks[i + 1].text));
                }
                // Skip call argument lists entirely (incl. from_f64).
                if next == Some("(") && prev != Some("as") {
                    i = file.matching(i + 1).unwrap_or(i + 1);
                    continue;
                }
                let standalone = !matches!(prev, Some("." | "::")) && next != Some("::");
                if standalone {
                    match known.get(&t.text) {
                        Some(FloatKind::Scalar) => {
                            return Some(format!("float binding `{}`", t.text))
                        }
                        Some(FloatKind::Slice) if next == Some("[") => {
                            return Some(format!("indexed float slice `{}`", t.text))
                        }
                        _ => {}
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Classify the operand ending at token `i` (inclusive) — the left-hand
/// side of an operator at `i + 1`.
fn left_operand(
    file: &SourceFile,
    i: usize,
    known: &HashMap<String, FloatKind>,
) -> Option<String> {
    let toks = &file.lexed.tokens;
    let t = toks.get(i)?;
    match t.kind {
        TokKind::Float => Some(format!("float literal `{}`", t.text)),
        TokKind::Ident => {
            if EXPR_KEYWORDS.contains(&t.text.as_str()) {
                return None;
            }
            let prev = i.checked_sub(1).map(|p| toks[p].text.as_str());
            let standalone = !matches!(prev, Some("." | "::"));
            if standalone {
                if let Some(FloatKind::Scalar) = known.get(&t.text) {
                    return Some(format!("float binding `{}`", t.text));
                }
            }
            // `nx as f64` — the cast keyword path is handled by the
            // right-operand scan of the *previous* operator; here check
            // the two tokens before: `as f64` directly left.
            if matches!(t.text.as_str(), "f64" | "f32") && prev == Some("as") {
                return Some(format!("`as {}` cast", t.text));
            }
            None
        }
        TokKind::Punct => match t.text.as_str() {
            ")" => {
                let open = file.matching(i)?;
                // A call's return type is unknown — except `.to_f64()`.
                if open > 0 && toks[open - 1].kind == TokKind::Ident {
                    let callee = toks[open - 1].text.as_str();
                    if callee == "to_f64" {
                        return Some("`.to_f64()` result".into());
                    }
                    return None;
                }
                float_evidence(file, open + 1, i, known)
            }
            "]" => {
                let open = file.matching(i)?;
                if open > 0 && toks[open - 1].kind == TokKind::Ident {
                    if let Some(FloatKind::Slice) = known.get(&toks[open - 1].text) {
                        return Some(format!("indexed float slice `{}`", toks[open - 1].text));
                    }
                }
                None
            }
            _ => None,
        },
        _ => None,
    }
}

/// Whether tokens[i] begins a *binary* use of an operator (vs unary).
fn is_binary(toks: &[Token], i: usize) -> bool {
    let Some(p) = i.checked_sub(1) else { return false };
    let prev = &toks[p];
    match prev.kind {
        TokKind::Ident => !EXPR_KEYWORDS.contains(&prev.text.as_str()),
        TokKind::Int | TokKind::Float => true,
        TokKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
        _ => false,
    }
}

/// End of the right operand starting at `start`: scan to the next
/// same-depth operator/terminator.
fn right_operand_end(file: &SourceFile, start: usize, limit: usize) -> usize {
    let toks = &file.lexed.tokens;
    let mut i = start;
    // Leading unary prefixes.
    while i < limit && matches!(toks[i].text.as_str(), "-" | "!" | "&" | "*" | "mut") {
        i += 1;
    }
    let mut depth = 0i32;
    while i < limit {
        let text = toks[i].text.as_str();
        match text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ if depth == 0
                && toks[i].kind == TokKind::Punct
                    && (BIN_OPS.contains(&text)
                        || matches!(
                            text,
                            ";" | ","
                                | "=="
                                | "!="
                                | "<"
                                | ">"
                                | "<="
                                | ">="
                                | "&&"
                                | "||"
                                | "="
                                | "?"
                                | ".."
                                | "..="
                        ))
                => {
                    return i;
                }
            _ => {}
        }
        i += 1;
    }
    limit
}

/// The main finding scan over a token range.
fn scan_range(
    file: &SourceFile,
    start: usize,
    end: usize,
    known: &HashMap<String, FloatKind>,
    out: &mut Vec<Finding>,
) {
    let toks = &file.lexed.tokens;
    let mut i = start;
    while i < end.min(toks.len()) {
        let t = &toks[i];
        // Skip diagnostics macros: `name ! ( .. )` / `name ! [ .. ]`.
        if t.kind == TokKind::Ident
            && DIAG_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|n| n.text == "!")
        {
            if let Some(open) = toks.get(i + 2) {
                if matches!(open.text.as_str(), "(" | "[" | "{") {
                    i = file.matching(i + 2).map(|c| c + 1).unwrap_or(i + 3);
                    continue;
                }
            }
        }
        // `from_f64(...)` argument lists are the lifting boundary:
        // literal-only constant expressions inside (`R::from_f64(1.0 / 6.0)`)
        // are one-time setup, not kernel math — skip them. If the
        // arguments touch *runtime* floats (a known binding, `.to_f64()`,
        // a cast), the arithmetic happens natively per call and the span
        // is scanned normally.
        if t.kind == TokKind::Ident
            && t.text == "from_f64"
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some(close) = file.matching(i + 1) {
                let runtime = (i + 2..close).any(|k| {
                    let tk = &toks[k];
                    tk.kind == TokKind::Ident
                        && (tk.text == "to_f64"
                            || tk.text == "as"
                            || (known.contains_key(&tk.text)
                                && !matches!(
                                    k.checked_sub(1).map(|p| toks[p].text.as_str()),
                                    Some("." | "::")
                                )))
                });
                if !runtime {
                    i = close + 1;
                    continue;
                }
            }
        }
        // Path intrinsics: `f64::sqrt(..)`.
        if t.kind == TokKind::Ident && matches!(t.text.as_str(), "f64" | "f32") {
            let is_cast = i.checked_sub(1).is_some_and(|p| toks[p].text == "as");
            if !is_cast
                && toks.get(i + 1).is_some_and(|n| n.text == "::")
                && toks.get(i + 2).is_some_and(|m| {
                    m.kind == TokKind::Ident && MATH_METHODS.contains(&m.text.as_str())
                })
            {
                emit(
                    file,
                    toks[i].line,
                    format!("native `{}::{}` call escapes Tracked dispatch", t.text, toks[i + 2].text),
                    out,
                );
                i += 3;
                continue;
            }
        }
        // Method intrinsics: `<recv>.sqrt(..)`.
        if t.text == "."
            && toks.get(i + 1).is_some_and(|m| {
                m.kind == TokKind::Ident && MATH_METHODS.contains(&m.text.as_str())
            })
            && toks.get(i + 2).is_some_and(|p| p.text == "(")
        {
            if let Some(recv) = i.checked_sub(1).and_then(|p| left_operand(file, p, known)) {
                emit(
                    file,
                    toks[i + 1].line,
                    format!(
                        "native `.{}()` on {} escapes Tracked dispatch",
                        toks[i + 1].text, recv
                    ),
                    out,
                );
            }
            i += 3;
            continue;
        }
        // Binary arithmetic.
        if t.kind == TokKind::Punct && BIN_OPS.contains(&t.text.as_str()) && is_binary(toks, i) {
            let left = i.checked_sub(1).and_then(|p| left_operand(file, p, known));
            let evidence = left.or_else(|| {
                let rend = right_operand_end(file, i + 1, end);
                float_evidence(file, i + 1, rend, known)
            });
            if let Some(ev) = evidence {
                emit(
                    file,
                    t.line,
                    format!("raw `{}` on native float ({ev}) escapes Tracked dispatch", t.text),
                    out,
                );
            }
        }
        i += 1;
    }
}

fn emit(file: &SourceFile, line: usize, msg: String, out: &mut Vec<Finding>) {
    if file.in_test(line) || file.allowed("native-float", line) {
        return;
    }
    out.push(Finding::new("tracked-escape", &file.rel, line, msg));
}
