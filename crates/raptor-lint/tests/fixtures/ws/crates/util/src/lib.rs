//! Seeded unsafe-audit violations: one justified unsafe pair, one
//! unjustified block.

/// Dereference with a documented contract.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn documented(p: *const u8) -> u8 {
    // SAFETY: caller guarantees `p` is valid for reads.
    unsafe { *p }
}

pub fn undocumented(x: &u64) -> u64 {
    unsafe { *(x as *const u64) }
}
