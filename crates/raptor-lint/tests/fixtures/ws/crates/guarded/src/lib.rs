//! Unsafe-free crate that anchors the invariant properly — must stay
//! finding-free.

#![forbid(unsafe_code)]

pub fn nothing() {}
