//! Seeded violations for the tracked-escape, annotation, and
//! batch-pairing rules. This fixture names itself `hydro` so it lands in
//! the linter's kernel-crate set.

#![forbid(unsafe_code)]

pub fn escaped(a: f64, b: f64) -> f64 {
    a * b
}

pub fn annotated(a: f64, b: f64) -> f64 {
    a * b // lint: allow(native-float, seeded suppression for the fixture test)
}

pub fn missing_reason(a: f64) -> f64 {
    a + 1.0 // lint: allow(native-float)
}

pub fn unknown_rule(a: f64) -> f64 {
    a - 1.0 // lint: allow(no-such-rule, the rule name is wrong on purpose)
}

pub fn kernel_batch(xs: &[f64], out: &mut [f64]) {
    for (o, x) in out.iter_mut().zip(xs) {
        *o = *x + 1.0;
    }
}

pub fn paired(x: f64) -> f64 {
    x
}

pub fn paired_batch(xs: &[f64], out: &mut [f64]) {
    for (o, x) in out.iter_mut().zip(xs) {
        *o = *x;
    }
}

pub fn tested(x: f64) -> f64 {
    x
}

pub fn tested_batch(xs: &[f64], out: &mut [f64]) {
    for (o, x) in out.iter_mut().zip(xs) {
        *o = *x;
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn twin() {
        let xs = [1.0];
        let mut out = [0.0];
        super::tested_batch(&xs, &mut out);
        assert_eq!(out[0], super::tested(xs[0]));
    }
}
