//! Seeded lock-discipline violations: nested shard scopes, a shard lock
//! held across a cache entry point, and a two-mutex ordering cycle. The
//! crate names itself `raptor-lab` so its files land in the linter's lock
//! scope.

#![forbid(unsafe_code)]

use std::path::Path;
use std::sync::Mutex;

pub struct ShardLock;

impl ShardLock {
    pub fn acquire(_p: &Path) -> Result<ShardLock, ()> {
        Ok(ShardLock)
    }
}

pub fn nested(a: &Path, b: &Path) {
    let _l1 = ShardLock::acquire(a).unwrap();
    let _l2 = ShardLock::acquire(b).unwrap();
}

pub fn append_lines(dir: &Path) {
    let _lock = ShardLock::acquire(dir).unwrap();
}

pub fn reenter(dir: &Path) {
    let _lock = ShardLock::acquire(dir).unwrap();
    append_lines(dir);
}

pub struct Two {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn lock_ab(s: &Two) {
    let _a = s.a.lock().unwrap();
    grab_b(s);
}

pub fn grab_b(s: &Two) {
    let _b = s.b.lock().unwrap();
}

pub fn lock_ba(s: &Two) {
    let _b = s.b.lock().unwrap();
    grab_a(s);
}

pub fn grab_a(s: &Two) {
    let _a = s.a.lock().unwrap();
}
