//! Unsafe-free crate that forgot `#![forbid(unsafe_code)]` — the
//! forbid-audit seed.

pub fn nothing() {}
