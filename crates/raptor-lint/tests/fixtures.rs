//! Integration tests for the four rules: every seeded violation in the
//! fixture workspace under `tests/fixtures/ws/` must be caught, nothing
//! else in the fixture may fire, and the real workspace must be clean.

use raptor_lint::{lint_workspace, Finding};
use std::path::{Path, PathBuf};

fn fixture_findings() -> Vec<Finding> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws");
    lint_workspace(&root).expect("fixture workspace scans")
}

fn by_rule(all: &[Finding], rule: &str) -> Vec<Finding> {
    all.iter().filter(|f| f.rule == rule).cloned().collect()
}

#[test]
fn tracked_escape_seeds_are_caught() {
    let all = fixture_findings();
    let hits = by_rule(&all, "tracked-escape");
    let mut lines: Vec<usize> = hits.iter().map(|f| f.line).collect();
    lines.sort_unstable();
    lines.dedup();
    assert_eq!(lines.len(), 2, "exactly the two seeded escape lines: {hits:?}");
    assert!(hits.iter().all(|f| f.file == "crates/hydro/src/lib.rs"));
    // `escaped` (a * b) fires; the allow under an unknown rule name does
    // not suppress `unknown_rule` (a - 1.0).
    assert!(hits.iter().any(|f| f.msg.contains("raw `*`")), "{hits:?}");
    assert!(hits.iter().any(|f| f.msg.contains("raw `-`")), "{hits:?}");
    // `annotated` and `missing_reason` are suppressed (the latter still
    // draws an annotation finding below), and the `*_batch` bodies are
    // structurally exempt.
    assert!(!hits.iter().any(|f| f.msg.contains("raw `+`")), "{hits:?}");
}

#[test]
fn annotation_grammar_seeds_are_caught() {
    let all = fixture_findings();
    let hits = by_rule(&all, "annotation");
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits.iter().any(|f| f.msg.contains("without a written reason")), "{hits:?}");
    assert!(
        hits.iter().any(|f| f.msg.contains("unknown lint rule `no-such-rule`")),
        "{hits:?}"
    );
}

#[test]
fn unsafe_audit_seeds_are_caught() {
    let all = fixture_findings();
    let hits = by_rule(&all, "unsafe-audit");
    assert_eq!(hits.len(), 2, "{hits:?}");
    // The undocumented block in `util` fires; the documented fn/block
    // pair does not.
    assert!(
        hits.iter().any(|f| {
            f.file == "crates/util/src/lib.rs" && f.msg.contains("unsafe block")
        }),
        "{hits:?}"
    );
    // `clean` lacks the forbid anchor; `guarded` carries it.
    assert!(
        hits.iter().any(|f| {
            f.file == "crates/clean/src/lib.rs" && f.msg.contains("forbid(unsafe_code)")
        }),
        "{hits:?}"
    );
    assert!(!hits.iter().any(|f| f.file.contains("guarded")), "{hits:?}");
}

#[test]
fn lock_discipline_seeds_are_caught() {
    let all = fixture_findings();
    let hits = by_rule(&all, "lock-discipline");
    assert!(
        hits.iter().any(|f| f.msg.contains("nested shard-lock scopes")),
        "nested shard acquire: {hits:?}"
    );
    assert!(
        hits.iter().any(|f| {
            f.msg.contains("held across call to `append_lines`")
        }),
        "re-entry through the cache entry point: {hits:?}"
    );
    assert!(
        hits.iter().any(|f| f.msg.contains("lock-order cycle")),
        "s.a/s.b ordering cycle: {hits:?}"
    );
}

#[test]
fn batch_pairing_seeds_are_caught() {
    let all = fixture_findings();
    let hits = by_rule(&all, "batch-pairing");
    // `kernel_batch` draws both findings (no twin, no test); `paired_batch`
    // only the missing test reference.
    assert_eq!(hits.len(), 3, "{hits:?}");
    assert!(
        hits.iter().any(|f| f.msg.contains("`kernel_batch` has no scalar twin `kernel`")),
        "{hits:?}"
    );
    assert!(
        hits.iter().any(|f| {
            f.msg.contains("`paired_batch`") && f.msg.contains("not referenced")
        }),
        "{hits:?}"
    );
    // `tested_batch` has both a twin and a test reference.
    assert!(!hits.iter().any(|f| f.msg.contains("tested_batch")), "{hits:?}");
}

/// The real workspace is the fifth fixture: it must stay clean, so the
/// lint can gate CI at exit status 0.
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = lint_workspace(&root).expect("workspace scans");
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean:\n{}",
        raptor_lint::report::render_text(&findings)
    );
}
