//! Cross-crate integration tests: the paper's workflows end to end.

use raptor_rs::*;

use bigfloat::Format;
use hydro::{Problem, ReconKind, DENS};
use raptor_core::{Config, Real, Session, Tracked};

/// §3.2 + §6.1 in one breath: truncate a full application run, confirm the
/// error ladder and the op accounting are consistent.
#[test]
fn sod_truncation_ladder_end_to_end() {
    let t_end = 0.02;
    let mut reference = hydro::setup(Problem::Sod, 2, 8, ReconKind::Plm);
    reference.run::<f64>(t_end, 1000, 2, &Session::passthrough());
    let mut last_err = f64::MAX;
    for m in [6u32, 14, 30] {
        let sess = Session::new(
            Config::op_files(Format::new(11, m), ["Hydro"]).with_counting(),
        )
        .unwrap();
        let mut sim = hydro::setup(Problem::Sod, 2, 8, ReconKind::Plm);
        sim.run::<Tracked>(t_end, 1000, 2, &sess);
        let err = amr::sfocu(&sim.mesh, &reference.mesh, DENS).l1;
        assert!(err < last_err, "error ladder must descend: {err} vs {last_err} at m={m}");
        last_err = err;
        let c = sess.counters();
        assert!(c.trunc.total() > 0 && c.truncated_fraction() > 0.5);
        assert!(c.trunc_bytes > 0, "memory model fed");
    }
    assert!(last_err < 1e-6, "30-bit run close to reference: {last_err}");
}

/// The IR pass and the Tracked runtime are two views of one tool: a kernel
/// compiled through `raptor-ir` and the same kernel through `Tracked`
/// produce bit-identical truncated results.
#[test]
fn ir_pass_and_tracked_runtime_agree() {
    use raptor_ir::{truncate_all, BinOp, Function, Inst, Interp, Module, ScratchMode};
    let fmt = Format::new(11, 10);
    // Kernel: ((x + y) * x) / (y + 2)
    let mut m = Module::default();
    let mut f = Function::build("k", 2);
    let two = f.push(Inst::Const(2.0));
    let s = f.push(Inst::Bin(BinOp::FAdd, 0, 1));
    let p = f.push(Inst::Bin(BinOp::FMul, s, 0));
    let d = f.push(Inst::Bin(BinOp::FAdd, 1, two));
    let q = f.push(Inst::Bin(BinOp::FDiv, p, d));
    m.add(f.ret(q));
    truncate_all(&mut m, fmt);
    let mut interp = Interp::new(&m, ScratchMode::ReusedPad);

    let kernel = |x: Tracked, y: Tracked| ((x + y) * x) / (y + Tracked::from_f64(2.0));
    for (x, y) in [(0.3, 0.7), (12.5, -3.25), (1e-3, 1e3)] {
        let via_ir = interp.call("k", &[x, y]);
        let sess = Session::new(Config::op_all(fmt)).unwrap();
        let g = sess.install();
        let via_rt = kernel(Tracked::from_f64(x), Tracked::from_f64(y)).to_f64();
        drop(g);
        assert_eq!(via_ir.to_bits(), via_rt.to_bits(), "({x},{y})");
    }
}

/// MPI ranks + op-mode + hydro: a rank-parallel truncated pipeline is
/// deterministic and truncation-visible (§3.6).
#[test]
fn ranks_with_truncated_local_compute() {
    let results = minimpi::run(4, |comm| {
        // Each rank runs a tiny truncated stencil on its slice and reduces.
        let sess = Session::new(Config::op_all(Format::new(11, 8))).unwrap();
        let g = sess.install();
        let mut acc = Tracked::from_f64(0.0);
        for i in 0..50 {
            let x = Tracked::from_f64((comm.rank() * 50 + i) as f64 * 0.01);
            acc = acc + (x * x + Tracked::from_f64(1.0)).sqrt();
        }
        let local = acc.to_f64();
        drop(g);
        comm.allreduce_sum(&[local])[0]
    });
    assert!(results.iter().all(|&r| r == results[0]));
    // Differs from the f64 chain.
    let full: f64 = (0..200).map(|k| ((k as f64 * 0.01).powi(2) + 1.0).sqrt()).sum();
    assert!((results[0] - full).abs() > 1e-6);
    assert!((results[0] - full).abs() / full < 1e-2);
}

/// mem-mode across a real solver module: flags appear, exclusion works,
/// and the config matrix is enforced.
#[test]
fn memmode_workflow_on_hydro() {
    let fmt = Format::new(11, 10);
    let cfg = Config::mem_functions(fmt, ["Hydro"], 1e-3).with_counting();
    let sess = Session::new(cfg).unwrap();
    let mut sim = hydro::setup(Problem::Sedov, 2, 8, ReconKind::Weno5);
    sim.fixed_dt = Some(1e-4);
    sim.adapt_every = 0;
    sim.run::<Tracked>(5.0 * 1e-4, 10, 1, &sess);
    let flags = sess.mem_flags();
    assert!(!flags.is_empty(), "deviations flagged");
    assert!(flags.iter().any(|f| f.stats.flags > 0));
    // Locations point into the hydro crate.
    assert!(flags.iter().any(|f| f.loc.file.contains("hydro")));
    // Fig. 2b enforcement: mem-mode at program scope is rejected.
    let mut bad = Config::mem_functions(fmt, ["Hydro"], 1e-3);
    bad.scope = raptor_core::Scope::Program;
    assert!(Session::new(bad).is_err());
}

/// Dynamic truncation through the AMR shadow in the bubble workload:
/// cutoff reduces the truncated share without losing the interface.
#[test]
fn bubble_cutoff_reduces_truncated_share() {
    let params = incomp::InsParams::default();
    let mut fracs = Vec::new();
    for cutoff in [0u32, 2] {
        let cfg = Config::op_files(Format::new(11, 10), ["INS/advection", "INS/diffusion"])
            .with_cutoff(3, cutoff)
            .with_counting();
        let sess = Session::new(cfg).unwrap();
        let mut sim = incomp::setup_bubble(32, 3, params);
        sim.run::<Tracked>(0.05, 60, &sess);
        assert!(!sim.interface_points().is_empty());
        fracs.push(sess.counters().truncated_fraction());
    }
    assert!(
        fracs[0] > fracs[1],
        "M-0 truncates more than M-2: {fracs:?}"
    );
    assert!(fracs[0] > 0.5);
}

/// The co-design pipeline from live counters (Fig. 8 plumbing).
#[test]
fn codesign_from_live_counters() {
    let fmt = Format::FP16;
    let sess = Session::new(Config::op_files(fmt, ["Hydro"]).with_counting()).unwrap();
    let mut sim = hydro::setup(Problem::Sod, 2, 8, ReconKind::Plm);
    sim.run::<Tracked>(0.01, 200, 1, &sess);
    let c = sess.counters();
    let s = codesign::estimate_speedup(&codesign::Machine::default(), fmt, &c);
    assert!(s.compute_bound > 1.0, "truncation should predict speedup: {}", s.compute_bound);
    assert!(s.memory_bound > 1.0);
    assert!(s.compute_bound < 10.0);
}

/// Failure injection: NaN and Inf flowing through a truncated region
/// neither crash nor corrupt the session.
#[test]
fn non_finite_values_flow_through() {
    let sess = Session::new(Config::op_all(Format::new(5, 10))).unwrap();
    let _g = sess.install();
    let nan = Tracked::from_f64(f64::NAN);
    let inf = Tracked::from_f64(f64::INFINITY);
    let x = Tracked::from_f64(2.0);
    assert!((nan + x).to_f64().is_nan());
    assert!((inf * x).to_f64().is_infinite());
    assert!((x / Tracked::from_f64(0.0)).to_f64().is_infinite());
    assert!((inf - inf).to_f64().is_nan());
    // fp16 overflow inside the region.
    assert!((Tracked::from_f64(60000.0) + Tracked::from_f64(60000.0))
        .to_f64()
        .is_infinite());
}

/// Guard-cell fills remain correct when the data they move was produced by
/// truncated kernels (truncation inside the mesh machinery interplay).
#[test]
fn truncated_data_through_guard_fill() {
    let mut sim = hydro::setup(Problem::Sedov, 3, 8, ReconKind::Plm);
    let sess = Session::new(Config::op_files(Format::new(11, 6), ["Hydro"])).unwrap();
    sim.run::<Tracked>(0.01, 100, 2, &sess);
    // All guard regions finite after repeated fills of truncated data.
    for idx in sim.mesh.leaves() {
        let b = sim.mesh.block(idx);
        assert!(b.data.iter().all(|v| v.is_finite()), "non-finite data in {:?}", b.pos);
    }
}

/// Fast-path counter integrity: per-thread counters flushed by worker
/// guards under `par_leaves` lose nothing and double-count nothing — the
/// total is exactly the op count of the sequential run, at every thread
/// count, with the persistent sweep pool in play.
#[test]
fn parallel_counter_flush_is_exact() {
    use amr::{Mesh, MeshParams};

    fn run_count(threads: usize) -> (u64, u64) {
        let mut mesh = Mesh::new(MeshParams {
            nx: 8,
            ny: 8,
            ng: 2,
            nvar: 1,
            nbx: 4,
            nby: 4,
            max_level: 2,
            domain: (0.0, 1.0, 0.0, 1.0),
        });
        mesh.fill_initial(|x, y, _| 1.0 + x + y);
        let sess = Session::new(
            Config::op_functions(Format::new(11, 12), ["Kern"]).with_counting(),
        )
        .unwrap();
        // Two sweeps, like the x/y pair of a hydro step (exercises the
        // reused work buffer as well).
        for _ in 0..2 {
            amr::par_leaves(&mut mesh, threads, |_geom, block| {
                let _g = sess.install();
                let _r = raptor_core::region("Kern");
                let mut acc = Tracked::from_f64(0.0);
                for v in block.data.iter() {
                    // 2 truncated ops per cell (mul + add).
                    acc = acc + Tracked::from_f64(*v) * Tracked::from_f64(1.5);
                }
                // 1 full-precision (outside-region) op per block.
                drop(_r);
                let _ = acc + Tracked::from_f64(1.0);
            });
        }
        let c = sess.counters();
        (c.trunc.total(), c.full.total())
    }

    let (t1, f1) = run_count(1);
    assert!(t1 > 0 && f1 > 0);
    for threads in [2, 3, 4, 8] {
        let (t, f) = run_count(threads);
        assert_eq!(t, t1, "truncated ops lost/duplicated at {threads} threads");
        assert_eq!(f, f1, "full ops lost/duplicated at {threads} threads");
    }
}
