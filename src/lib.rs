//! # raptor-rs — facade over the RAPTOR reproduction workspace
//!
//! Re-exports every crate of the reproduction of *RAPTOR: Practical
//! Numerical Profiling of Scientific Applications* (SC '25). See the
//! individual crates for full documentation:
//!
//! * [`raptor_core`] — the profiling runtime (op-mode, mem-mode, scoping)
//! * [`bigfloat`] — the correctly-rounded arbitrary-precision substrate
//! * [`raptor_ir`] — the instrumentation pass on a miniature IR
//! * [`amr`] — block-structured adaptive mesh refinement
//! * [`hydro`] — compressible Euler (Sedov/Sod workloads)
//! * [`eos`] — table EOS + Newton inversion + burning (Cellular)
//! * [`incomp`] — incompressible multiphase flow (Bubble)
//! * [`minimpi`] — thread-rank message passing
//! * [`codesign`] — FPU/roofline hardware model
//! * [`raptor_lab`] — unified scenario registry + campaign engine

#![forbid(unsafe_code)]

pub use amr;
pub use bigfloat;
pub use codesign;
pub use eos;
pub use hydro;
pub use incomp;
pub use minimpi;
pub use raptor_core;
pub use raptor_ir;
pub use raptor_lab;
