//! Domain scenario 4: hardware co-design advisory (§7.2) — a thin
//! wrapper over a `raptor-lab` enumerative campaign: sweep the default
//! format × cutoff lattice, gate on fidelity, rank the survivors by the
//! roofline-resolved predicted speedup. Since the distributed-campaign
//! work the sweep shards across minimpi ranks (`--ranks N`), restarts
//! warm from an outcome cache (`--resume <dir>` — a sharded cache
//! directory that any number of concurrent processes append to; a
//! legacy single-file cache migrates in place on first load), and can
//! restrict itself to the GPU-native fp32/fp64 lattice (`--native`).
//! `--study`
//! runs the paper's headline artifact instead: every registry scenario
//! (or a `--scenarios a,b,c` subset) swept over the same lattice, the
//! `(scenario, candidate)` pairs distributed with the work-stealing
//! scheduler, and the results merged into one Table-1-style markdown
//! ranking.
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin codesign_advisor
//! cargo run --release -p raptor-examples --bin codesign_advisor -- --tiny
//! cargo run --release -p raptor-examples --bin codesign_advisor -- eos/cellular
//! cargo run --release -p raptor-examples --bin codesign_advisor -- --tiny --ranks 4 --resume sweep-cache
//! cargo run --release -p raptor-examples --bin codesign_advisor -- --tiny --native
//! # the full-registry study, work-stolen across 4 ranks, resumable
//! cargo run --release -p raptor-examples --bin codesign_advisor -- --study --ranks 4 --resume study-cache
//! cargo run --release -p raptor-examples --bin codesign_advisor -- --tiny --study --scenarios ir/horner,eos/cellular
//! # resume-drill maintenance: drop every other cached row
//! cargo run --release -p raptor-examples --bin codesign_advisor -- --cache-evict-half sweep-cache
//! # render the scheduler-stats trend recorded inside a cache dir
//! cargo run --release -p raptor-examples --bin codesign_advisor -- --stats-history sweep-cache/stats_history.jsonl
//! ```

use raptor_examples::parse_lab_args;
use raptor_lab::{
    load_stats_history, native_candidates, render_stats_history,
    run_campaign_distributed_resumable, run_campaign_resumed, run_study_distributed_resumable,
    run_study_resumed, study_scenarios, CampaignSpec, OutcomeCache, ResumeStats,
};

fn main() {
    // Maintenance mode for the CI resume drill: evict half the cache and
    // exit, so a re-run demonstrably recomputes only the evicted half.
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if let Some(i) = raw.iter().position(|a| a == "--cache-evict-half") {
        let path = raw.get(i + 1).unwrap_or_else(|| {
            eprintln!("--cache-evict-half wants a cache path");
            std::process::exit(2);
        });
        let mut cache = OutcomeCache::load(path).expect("load cache");
        let before = cache.len();
        cache.evict_half();
        cache.save().expect("save cache");
        println!("cache-evict: {before} -> {} entries", cache.len());
        return;
    }
    // Reporting mode: render the scheduler-stats trend that resumed runs
    // append next to their cache, so scheduler changes stay measurable
    // against the recorded baseline.
    if let Some(i) = raw.iter().position(|a| a == "--stats-history") {
        let path = raw.get(i + 1).unwrap_or_else(|| {
            eprintln!("--stats-history wants a stats_history.jsonl path");
            std::process::exit(2);
        });
        let records = load_stats_history(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        print!("{}", render_stats_history(&records));
        return;
    }

    let args = parse_lab_args("hydro/sod");
    let mut spec = CampaignSpec::sweep(args.params);
    if args.native {
        spec.candidates = native_candidates();
    }

    if args.study {
        // The full-registry study: every scenario (or the --scenarios
        // subset) over one lattice, pairs work-stolen across ranks,
        // merged into the cross-scenario codesign ranking. A positional
        // scenario name is honored as a one-scenario subset rather than
        // silently ignored; combining it with --scenarios is ambiguous.
        let subset = match (args.named, args.scenarios.as_deref()) {
            (true, Some(_)) => {
                eprintln!(
                    "give either a scenario name or --scenarios a,b,c with --study, not both"
                );
                std::process::exit(2);
            }
            (true, None) => Some(args.scenario.name().to_string()),
            (false, subset) => subset.map(str::to_string),
        };
        let scenarios = study_scenarios(subset.as_deref()).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        });
        println!(
            "codesign study: {} scenario(s) x {} candidates across {} rank(s), fidelity floor {}",
            scenarios.len(),
            spec.candidates.len(),
            args.ranks,
            spec.fidelity_floor
        );
        let (study, stats) = match &args.resume {
            Some(path) => run_study_resumed(&scenarios, &spec, args.ranks, path)
                .expect("resume cache"),
            None => run_study_distributed_resumable(&scenarios, &spec, args.ranks, None),
        };
        println!(
            "resume: cached={} computed={} pairs_by_rank={:?} stealers={} queue_wait={:.3}s wall={:.3}s",
            stats.cached,
            stats.computed,
            stats.pairs_by_rank,
            stats.stealers,
            stats.queue_wait_s,
            stats.wall_s
        );
        if let Some(path) = &args.resume {
            // The append itself is best-effort (a failure is warned on
            // stderr by the library); this line is a pointer, not a
            // receipt.
            println!(
                "stats history: {}",
                raptor_lab::stats_history_path(path).display()
            );
        }
        println!();
        print!("{}", study.render_markdown());
        println!();
        println!("{}", study.to_json().render());
        return;
    }
    // A scenario subset only means something for a study; dropping it
    // silently would sweep the wrong workload.
    if args.scenarios.is_some() {
        eprintln!("--scenarios requires --study (single-scenario sweeps take a positional name)");
        std::process::exit(2);
    }
    println!(
        "co-design advisor: {} — sweeping {} candidates across {} rank(s), fidelity floor {}{}",
        args.scenario.name(),
        spec.candidates.len(),
        args.ranks,
        spec.fidelity_floor,
        if args.native { " (GPU-native lattice)" } else { "" }
    );

    let (report, stats): (_, ResumeStats) = match &args.resume {
        Some(path) => run_campaign_resumed(args.scenario.as_ref(), &spec, args.ranks, path)
            .expect("resume cache"),
        None => {
            run_campaign_distributed_resumable(args.scenario.as_ref(), &spec, args.ranks, None)
        }
    };
    println!("resume: cached={} computed={}", stats.cached, stats.computed);
    if let Some(path) = &args.resume {
        // Best-effort append (failures are warned on stderr); this line
        // is a pointer, not a receipt.
        println!(
            "stats history: {}",
            raptor_lab::stats_history_path(path).display()
        );
    }
    if report.outcomes.len() < spec.candidates.len() {
        println!(
            "({} cutoff duplicates dropped: scenario has no refinement hierarchy)",
            spec.candidates.len() - report.outcomes.len()
        );
    }
    println!();
    print!("{}", report.render_table());
    println!();
    match report.best() {
        Some(best) => println!(
            "advice: {} — predicted {:.2}x at fidelity {:.6}",
            best.spec.label(),
            best.predicted_speedup,
            best.fidelity
        ),
        None => println!("advice: no candidate cleared the fidelity floor; stay at FP64"),
    }
    if args.native {
        match report.best() {
            Some(best) if best.spec.format != bigfloat::Format::FP64 => println!(
                "GPU verdict: a native port tolerates {} on this workload",
                best.spec.label()
            ),
            _ => println!("GPU verdict: only fp64 survives — port at full precision"),
        }
    }
    println!();
    println!("'Collaborating with scientists for gathering data on the numerical");
    println!("behavior of software can become a powerful way to enable supercomputing");
    println!("centers to make informed decisions about future procurements.' (§7.2)");
    println!();
    println!("{}", report.to_json().render());
}
