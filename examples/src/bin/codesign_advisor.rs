//! Domain scenario 4: hardware co-design advisory (§7.2 in miniature) —
//! given a workload profile, which low-precision FPU pays off?
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin codesign_advisor
//! ```

use bigfloat::Format;
use codesign::{estimate_speedup, perf_density_extrapolated, Machine};
use hydro::{Problem, ReconKind};
use raptor_core::{Config, Session, Tracked};

fn main() {
    println!("Co-design advisor: profile Sod once per candidate format, predict speedup.");
    let machine = Machine::default();
    let max_level = 2;
    let t_end = 0.02;
    println!(
        "{:>10} {:>9} {:>13} {:>13} {:>13}",
        "format", "density", "trunc %", "compute-bnd", "memory-bnd"
    );
    for fmt in [Format::FP32, Format::FP16, Format::new(8, 7), Format::new(5, 2)] {
        let cfg = Config::op_files(fmt, ["Hydro"]).with_counting();
        let sess = Session::new(cfg).unwrap();
        let mut sim = hydro::setup(Problem::Sod, max_level, 8, ReconKind::Plm);
        sim.run::<Tracked>(t_end, 10_000, 2, Some(&sess));
        let c = sess.counters();
        let s = estimate_speedup(&machine, fmt, &c);
        println!(
            "{:>10} {:>9.2} {:>12.1}% {:>12.2}x {:>12.2}x",
            format!("{fmt}"),
            perf_density_extrapolated(fmt),
            100.0 * c.truncated_fraction(),
            s.compute_bound,
            s.memory_bound
        );
    }
    println!();
    println!("'Collaborating with scientists for gathering data on the numerical");
    println!("behavior of software can become a powerful way to enable supercomputing");
    println!("centers to make informed decisions about future procurements.' (§7.2)");
}
