//! Domain scenario 4: hardware co-design advisory (§7.2) — now a thin
//! wrapper over a `raptor-lab` enumerative campaign: sweep the default
//! format × cutoff lattice, gate on fidelity, rank the survivors by the
//! roofline-resolved predicted speedup.
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin codesign_advisor
//! cargo run --release -p raptor-examples --bin codesign_advisor -- --tiny
//! cargo run --release -p raptor-examples --bin codesign_advisor -- eos/cellular
//! ```

use raptor_examples::parse_lab_args;
use raptor_lab::{run_campaign, CampaignSpec};

fn main() {
    let (scenario, params) = parse_lab_args("hydro/sod");
    let spec = CampaignSpec::sweep(params);
    println!(
        "co-design advisor: {} — sweeping {} candidates in parallel, fidelity floor {}",
        scenario.name(),
        spec.candidates.len(),
        spec.fidelity_floor
    );
    let report = run_campaign(scenario.as_ref(), &spec);
    if report.outcomes.len() < spec.candidates.len() {
        println!(
            "({} cutoff duplicates dropped: scenario has no refinement hierarchy)",
            spec.candidates.len() - report.outcomes.len()
        );
    }
    println!();
    print!("{}", report.render_table());
    println!();
    match report.best() {
        Some(best) => println!(
            "advice: {} — predicted {:.2}x at fidelity {:.6}",
            best.spec.label(),
            best.predicted_speedup,
            best.fidelity
        ),
        None => println!("advice: no candidate cleared the fidelity floor; stay at FP64"),
    }
    println!();
    println!("'Collaborating with scientists for gathering data on the numerical");
    println!("behavior of software can become a powerful way to enable supercomputing");
    println!("centers to make informed decisions about future procurements.' (§7.2)");
    println!();
    println!("{}", report.to_json().render());
}
