//! Domain scenario 3: the rising bubble with selective truncation
//! (Fig. 1 in miniature), printing an ASCII rendering of the interface
//! and the AMR level bands.
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin bubble_rising
//! ```

use bigfloat::Format;
use incomp::{setup_bubble, InsParams};
use raptor_core::{Config, Session, Tracked};

fn render(sim: &incomp::Bubble, title: &str) {
    println!("--- {title}: t = {:.3}, components = {}, centroid y = {:+.3} ---",
        sim.t, sim.component_count(), sim.centroid().1);
    let (nx, ny) = (sim.grid.nx, sim.grid.ny);
    let step = (nx / 48).max(1);
    for j in (0..ny).step_by(step * 2).rev() {
        let mut line = String::new();
        for i in (0..nx).step_by(step) {
            let phi = sim.grid.phi[sim.grid.at(i as isize, j as isize)];
            let lvl = sim.level_map[j * nx + i];
            line.push(if phi > 0.0 {
                '@' // air
            } else if phi > -2.0 * sim.grid.h {
                '+' // interface band
            } else {
                // water, shaded by AMR level
                match lvl {
                    3.. => ':',
                    2 => '.',
                    _ => ' ',
                }
            });
        }
        println!("|{line}|");
    }
}

fn main() {
    let n = 48;
    let t_end = 0.5;
    println!("Rising bubble (Re 35 -> truncated continuation), grid {n}x{}", 3 * n / 2);

    let mut reference = setup_bubble(n, 3, InsParams::default());
    reference.run::<f64>(t_end, 10_000, &Session::passthrough());
    render(&reference, "fp64 reference");

    for (m, cutoff, label) in [
        (12u32, 0u32, "12-bit mantissa, truncate everywhere"),
        (4, 0, "4-bit mantissa, truncate everywhere"),
        (4, 1, "4-bit mantissa, cutoff M-1 (finest level spared)"),
    ] {
        let mut sim = setup_bubble(n, 3, InsParams::default());
        let cfg = Config::op_files(Format::new(11, m), ["INS/advection", "INS/diffusion"])
            .with_cutoff(3, cutoff)
            .with_counting();
        let sess = Session::new(cfg).unwrap();
        sim.run::<Tracked>(t_end, 10_000, &sess);
        render(&sim, label);
        let pts = sim.interface_points();
        let ref_pts = reference.interface_points();
        println!(
            "    interface deviation vs reference: {:.4e}   truncated ops: {:.1}%",
            incomp::interface_deviation(&pts, &ref_pts),
            100.0 * sess.counters().truncated_fraction()
        );
    }
    println!();
    println!("Like the paper's Fig. 1 insets: moderate precision with selective");
    println!("truncation preserves the interface; aggressive truncation everywhere");
    println!("distorts it.");
}
