//! Domain scenario 1: hunt for the minimum safe precision of the Sedov
//! blast's hydro solver using AMR-level-selective truncation — the §6.1
//! methodology, now a thin wrapper over the `raptor-lab` campaign
//! engine's greedy precision search.
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin sedov_precision_hunt
//! cargo run --release -p raptor-examples --bin sedov_precision_hunt -- --tiny
//! cargo run --release -p raptor-examples --bin sedov_precision_hunt -- hydro/sod
//! ```
//!
//! `--tiny` switches to the mini scale (coarse grid, few steps) for CI
//! smoke runs; an optional scenario name hunts any registry entry.

use raptor_examples::parse_lab_args;
use raptor_lab::{precision_search, search_to_json, SearchSpec};

fn main() {
    let (scenario, params) = parse_lab_args("hydro/sedov");
    let floor = 0.999;
    let spec = SearchSpec::new(params, floor);
    println!(
        "precision hunt: {} (scale {}, fidelity floor {floor}, cutoffs M-0..M-{})",
        scenario.name(),
        params.scale,
        spec.cutoffs.last().unwrap()
    );

    let rows = precision_search(scenario.as_ref(), &spec);

    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>8}",
        "cutoff", "minimal m", "fidelity", "trunc %", "probes"
    );
    for row in &rows {
        println!(
            "{:>8} {:>12} {:>12.6} {:>8.1}% {:>8}",
            format!("M-{}", row.cutoff),
            row.minimal_m.map_or("none".to_string(), |m| m.to_string()),
            row.fidelity,
            100.0 * row.truncated_fraction,
            row.probes.len()
        );
    }
    println!();
    println!("Reading the rows like the paper reads Fig. 7a: sparing the finest AMR");
    println!("level (M-1) admits a narrower mantissa at a modest cost in truncated-");
    println!("operation share.");
    println!();
    println!("{}", search_to_json(scenario.name(), &rows).render());
}
