//! Domain scenario 1: hunt for the minimum safe precision of the Sedov
//! blast's hydro solver using AMR-level-selective truncation — the §6.1
//! methodology in miniature.
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin sedov_precision_hunt
//! ```

use bigfloat::Format;
use hydro::{Problem, ReconKind, DENS};
use raptor_core::{Config, Session, Tracked};

fn main() {
    let max_level = 3;
    let t_end = 0.015;
    println!("Sedov precision hunt: M = {max_level}, t_end = {t_end}");
    let mut reference = hydro::setup(Problem::Sedov, max_level, 8, ReconKind::Plm);
    reference.run::<f64>(t_end, 10_000, 4, None);
    println!("reference: {} leaf blocks at t = {:.3}", reference.mesh.leaf_count(), reference.t);
    println!();
    println!(
        "{:>9} {:>8} {:>12} {:>9}  verdict",
        "mantissa", "cutoff", "L1(dens)", "trunc %"
    );
    // The scientist's loop: start aggressive, relax until acceptable.
    let acceptable = 1e-3;
    for &cutoff in &[0u32, 1, 2] {
        for &m in &[4u32, 8, 12, 20] {
            let cfg = Config::op_files(Format::new(11, m), ["Hydro"])
                .with_cutoff(max_level, cutoff)
                .with_counting();
            let sess = Session::new(cfg).unwrap();
            let mut sim = hydro::setup(Problem::Sedov, max_level, 8, ReconKind::Plm);
            sim.run::<Tracked>(t_end, 10_000, 4, Some(&sess));
            let err = amr::sfocu(&sim.mesh, &reference.mesh, DENS).l1;
            let frac = sess.counters().truncated_fraction();
            let verdict = if err < acceptable { "OK" } else { "too coarse" };
            println!(
                "{:>9} {:>8} {:>12.3e} {:>8.1}%  {verdict}",
                m,
                format!("M-{cutoff}"),
                err,
                100.0 * frac
            );
        }
    }
    println!();
    println!("Reading the table like the paper reads Fig. 7a: sparing the finest AMR");
    println!("level (M-1) buys orders of magnitude of accuracy at a modest cost in");
    println!("truncated-operation share.");
}
