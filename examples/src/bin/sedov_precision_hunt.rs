//! Domain scenario 1: hunt for the minimum safe precision of the Sedov
//! blast's hydro solver using AMR-level-selective truncation — the §6.1
//! methodology, now a thin wrapper over the `raptor-lab` campaign
//! engine's greedy precision search. `--ranks N` steals the individual
//! bisection *probes* across minimpi ranks through the shared
//! work-stealing `TaskPool` (per-cutoff chain state stays with the
//! rank-0 row owner, so rows are identical to the serial search);
//! `--native` answers the §3.6 GPU question instead (a fp32/fp64-only
//! campaign — bisecting mantissa widths makes no sense when only
//! hardware formats are on the table); `--resume DIR` hunts against a
//! sharded probe cache, so interrupted hunts restart warm and a
//! completed hunt replays with zero scenario runs.
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin sedov_precision_hunt
//! cargo run --release -p raptor-examples --bin sedov_precision_hunt -- --tiny
//! cargo run --release -p raptor-examples --bin sedov_precision_hunt -- hydro/sod --ranks 3
//! cargo run --release -p raptor-examples --bin sedov_precision_hunt -- --tiny --native
//! cargo run --release -p raptor-examples --bin sedov_precision_hunt -- --tiny --resume cache-dir
//! ```
//!
//! `--tiny` switches to the mini scale (coarse grid, few steps) for CI
//! smoke runs; an optional scenario name hunts any registry entry.

use raptor_examples::parse_lab_args;
use raptor_lab::{
    native_candidates, precision_search_distributed_stats, precision_search_resumed,
    run_campaign_distributed, run_campaign_resumed, search_to_json, study_scenarios,
    CampaignSpec, Scenario, SearchSpec,
};

fn main() {
    let args = parse_lab_args("hydro/sedov");
    let floor = 0.999;

    if args.study {
        eprintln!("--study is a campaign sweep (use codesign_advisor --study)");
        std::process::exit(2);
    }
    // --scenarios a,b,c hunts a registry subset back to back; otherwise
    // hunt the single named (or default) scenario. Combining an explicit
    // positional name with --scenarios is ambiguous — refuse rather than
    // silently preferring one.
    if args.named && args.scenarios.is_some() {
        eprintln!("give either a scenario name or --scenarios a,b,c, not both");
        std::process::exit(2);
    }
    let scenarios: Vec<Box<dyn Scenario>> = match args.scenarios.as_deref() {
        Some(subset) => study_scenarios(Some(subset)).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(2);
        }),
        None => vec![args.scenario],
    };

    if args.native {
        // The GPU-native hunt: no mantissa ladder to bisect — sweep the
        // fp32/fp64 hardware lattice and report the narrowest survivor.
        let mut spec = CampaignSpec::sweep(args.params);
        spec.candidates = native_candidates();
        spec.fidelity_floor = floor;
        for scenario in &scenarios {
            println!(
                "native precision hunt: {} (scale {}, fidelity floor {floor}, {} rank(s))",
                scenario.name(),
                args.params.scale,
                args.ranks
            );
            let report = match &args.resume {
                Some(path) => {
                    let (report, stats) =
                        run_campaign_resumed(scenario.as_ref(), &spec, args.ranks, path)
                            .expect("resume cache");
                    println!("resume: cached={} computed={}", stats.cached, stats.computed);
                    report
                }
                None => run_campaign_distributed(scenario.as_ref(), &spec, args.ranks),
            };
            println!();
            print!("{}", report.render_table());
            println!();
            match report.best() {
                Some(best) if best.spec.format != bigfloat::Format::FP64 => println!(
                    "a GPU port tolerates {} at fidelity {:.6}",
                    best.spec.label(),
                    best.fidelity
                ),
                _ => println!("only fp64 clears the floor — a GPU port must stay double"),
            }
            println!();
            println!("{}", report.to_json().render());
        }
        return;
    }

    let spec = SearchSpec::new(args.params, floor);
    for scenario in &scenarios {
        println!(
            "precision hunt: {} (scale {}, fidelity floor {floor}, cutoffs M-0..M-{}, {} rank(s))",
            scenario.name(),
            args.params.scale,
            spec.cutoffs.last().unwrap(),
            args.ranks
        );

        // `--resume DIR` hunts against the sharded probe cache: every
        // bisection probe is a deterministic (scenario, scale, cutoff, m)
        // point, so a warm re-hunt replays the chains with zero scenario
        // runs — and any number of concurrent hunts share the cache.
        let (rows, stats) = match &args.resume {
            Some(path) => precision_search_resumed(scenario.as_ref(), &spec, args.ranks, path)
                .expect("resume cache"),
            None => precision_search_distributed_stats(scenario.as_ref(), &spec, args.ranks),
        };
        println!(
            "steal: probes cached={} computed={} probes_by_rank={:?} stealers={} queue_wait={:.3}s",
            stats.cached, stats.computed, stats.pairs_by_rank, stats.stealers, stats.queue_wait_s
        );

        println!();
        println!(
            "{:>8} {:>12} {:>12} {:>9} {:>8}",
            "cutoff", "minimal m", "fidelity", "trunc %", "probes"
        );
        for row in &rows {
            println!(
                "{:>8} {:>12} {:>12.6} {:>8.1}% {:>8}",
                format!("M-{}", row.cutoff),
                row.minimal_m.map_or("none".to_string(), |m| m.to_string()),
                row.fidelity,
                100.0 * row.truncated_fraction,
                row.probes.len()
            );
        }
        println!();
        println!("{}", search_to_json(scenario.name(), &rows).render());
        println!();
    }
    println!("Reading the rows like the paper reads Fig. 7a: sparing the finest AMR");
    println!("level (M-1) admits a narrower mantissa at a modest cost in truncated-");
    println!("operation share.");
}
