//! Domain scenario 2: mem-mode numerical debugging (§6.3 in miniature).
//!
//! A kernel with a hidden catastrophic cancellation is truncated; the
//! mem-mode shadow table flags the offending source line, the scientist
//! fences it off, and the error collapses.
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin mem_debug
//! ```

use bigfloat::Format;
use raptor_core::{region, Config, Real, Session, Tracked};

/// Numerically naive quadratic-root kernel: the textbook cancellation.
fn smaller_root<R: Real>(a: R, b: R, c: R) -> R {
    let _r = region("Quad/naive");
    let disc = (b * b - R::from_f64(4.0) * a * c).sqrt();
    // Cancels catastrophically when b > 0 and 4ac << b^2.
    (-b + disc) / (R::two() * a)
}

/// A numerically benign companion kernel: evaluates the residual.
fn residual<R: Real>(a: R, b: R, c: R, x: R) -> R {
    let _r = region("Quad/residual");
    (a * x + b) * x + c
}

fn main() {
    let (a, b, c) = (1.0, 1e4, 1.0);
    let exact = {
        // Stable formula for the small root.
        let disc = (b * b - 4.0 * a * c).sqrt();
        2.0 * c / (-b - disc)
    };
    println!("mem-mode debugging demo: smaller root of x^2 + 1e4 x + 1 = 0");
    println!("  exact (stable formula): {exact:.17e}");

    // Step 1: truncate the whole Quad module, watch the flags.
    let fmt = Format::new(11, 30);
    let sess = Session::new(Config::mem_functions(fmt, ["Quad"], 1e-7)).unwrap();
    let guard = sess.install();
    let x = smaller_root(
        Tracked::from_f64(a),
        Tracked::from_f64(b),
        Tracked::from_f64(c),
    );
    let res = residual(Tracked::from_f64(a), Tracked::from_f64(b), Tracked::from_f64(c), x);
    let got = x.to_f64();
    let _ = res.to_f64();
    drop(guard);
    println!("  truncated (30-bit mantissa everywhere): {got:.17e}  rel err {:.2e}",
        ((got - exact) / exact).abs());
    println!("  mem-mode deviation heatmap:");
    for f in sess.mem_flags().iter().take(4) {
        println!(
            "    {}  ops {:>4}  flags {:>4}  max dev {:.2e}",
            f.loc, f.stats.ops, f.stats.flags, f.stats.max_dev
        );
    }
    println!("  -> two suspects: the residual line (largest deviation) and the");
    println!("     cancellation line. As in the paper (6.3), a flagged location can");
    println!("     either be fragile itself or merely AMPLIFY an error introduced");
    println!("     upstream - here the residual amplifies the root's error, and the");
    println!("     true culprit is the cancellation in Quad/naive.");

    // Step 2: fence the flagged module off (run it at full precision).
    let cfg = Config::mem_functions(fmt, ["Quad"], 1e-7).with_exclude(["Quad/naive"]);
    let sess2 = Session::new(cfg).unwrap();
    let guard2 = sess2.install();
    let x2 = smaller_root(
        Tracked::from_f64(a),
        Tracked::from_f64(b),
        Tracked::from_f64(c),
    );
    let got2 = x2.to_f64();
    drop(guard2);
    println!();
    println!(
        "  excluding Quad/naive: {got2:.17e}  rel err {:.2e}",
        ((got2 - exact) / exact).abs()
    );
    println!("  -> working backwards from the flags restored the accuracy, without");
    println!("     guessing which of the two modules was numerically fragile.");
}
