//! Batch-vs-scalar bit-identity smoke: run each batched consumer twice —
//! once with `raptor_core::batch` slice kernels enabled (the default) and
//! once with [`batch::set_force_scalar`] pinning every consumer to its
//! per-op scalar path — then byte-compare every cell of every variable and
//! the session op counters.
//!
//! Five consumers are exercised both ways:
//! - a tiny Sedov blast with PLM reconstruction (the element-wise sweep
//!   chains),
//! - the same blast with WENO5 reconstruction (the fused five-point
//!   stencil kernel),
//! - a Sod shock tube solved with HLL (the partitioned Riemann solver's
//!   supersonic/subsonic interface classes and the HLL middle flux),
//! - a tiny two-phase bubble step loop (fused WENO5 upwind advection,
//!   diffusion, and the row-sliced CSF curvature),
//! - the same bubble grid through level-set reinitialization pseudo-time
//!   iterations (the sign-partitioned Godunov Hamiltonian rows).
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin batch_diff
//! ```
//!
//! Exits nonzero (and names the first differing cell) on any mismatch.
//! This is the CI gate for the batch tier's core contract: the fast path
//! is an *optimization*, never a semantic change.

use bigfloat::Format;
use hydro::{setup, Problem, ReconKind, RiemannKind};
use incomp::{compute_dt, reinitialize, step, Grid, InsParams};
use raptor_core::{batch, Config, Counters, Session, Tracked};

/// One tiny Sedov run (max_level=2, 3 threads, a handful of steps) under
/// an op-mode counting session; returns the final mesh and the counters.
fn run_sedov(fmt: Format, recon: ReconKind, force_scalar: bool) -> (amr::Mesh, Counters) {
    batch::set_force_scalar(force_scalar);
    let mut sim = setup(Problem::Sedov, 2, 8, recon);
    let sess = Session::new(Config::op_files(fmt, ["Hydro"]).with_counting())
        .expect("valid config");
    sim.run::<Tracked>(0.02, 12, 3, &sess);
    batch::set_force_scalar(false);
    (sim.mesh, sess.counters())
}

/// A Sod shock tube solved with the HLL flux: the tube's supersonic and
/// subsonic interface populations cover the Riemann partition's classes,
/// and the HLL middle flux (absent from the default-HLLC Sedov runs) goes
/// through its per-component batch chain.
fn run_sod_hll(fmt: Format, force_scalar: bool) -> (amr::Mesh, Counters) {
    batch::set_force_scalar(force_scalar);
    let mut sim = setup(Problem::Sod, 2, 8, ReconKind::Plm);
    sim.hydro.riemann = RiemannKind::Hll;
    let sess = Session::new(Config::op_files(fmt, ["Hydro"]).with_counting())
        .expect("valid config");
    sim.run::<Tracked>(0.02, 12, 3, &sess);
    batch::set_force_scalar(false);
    (sim.mesh, sess.counters())
}

/// Seeded two-phase grid shared by the bubble and reinit runs.
fn bubble_grid() -> Grid {
    let n = 24;
    let h = 2.0 / n as f64;
    let mut g = Grid::new(n, n, h, (-1.0, -1.0));
    for j in 0..n {
        for i in 0..n {
            let (x, y) = g.xy(i, j);
            let c = g.at(i as isize, j as isize);
            g.phi[c] = 0.5 - (x * x + y * y).sqrt();
            g.u[c] = 0.3 * (3.1 * x).sin() * (2.3 * y + 0.4).cos();
            g.v[c] = -0.2 * (2.7 * y).sin() * (1.9 * x - 0.2).cos();
        }
    }
    g.apply_bcs();
    g
}

/// A few steps of the incompressible solver on a tiny two-phase grid with
/// mixed-sign seeded velocities (both upwind partitions carry cells) and
/// no AMR level map, so the batched advection/diffusion/CSF paths engage.
fn run_bubble(fmt: Format, force_scalar: bool) -> (Grid, Counters) {
    batch::set_force_scalar(force_scalar);
    let mut g = bubble_grid();
    let params = InsParams::default();
    let sess = Session::new(Config::op_files(fmt, ["INS"]).with_counting())
        .expect("valid config");
    for _ in 0..3 {
        let dt = compute_dt(&g, &params);
        step::<Tracked>(&mut g, &params, dt, None, &sess);
    }
    batch::set_force_scalar(false);
    (g, sess.counters())
}

/// Level-set reinitialization on the seeded bubble grid, distorted away
/// from a distance function so the pseudo-time loop does real work: the
/// sign-partitioned Godunov rows vs the per-cell generic loop.
fn run_bubble_reinit(fmt: Format, force_scalar: bool) -> (Grid, Counters) {
    batch::set_force_scalar(force_scalar);
    let mut g = bubble_grid();
    for v in g.phi.iter_mut() {
        *v *= 2.5;
    }
    g.apply_bcs();
    let sess = Session::new(Config::op_files(fmt, ["INS"]).with_counting())
        .expect("valid config");
    reinitialize::<Tracked>(&mut g, 12, &sess);
    batch::set_force_scalar(false);
    (g, sess.counters())
}

/// Compare one consumer's batch and scalar runs; print the verdict line
/// CI greps for and return whether they matched.
fn report(label: &str, cell_diff: Option<String>, count_b: Counters, count_s: Counters) -> bool {
    let cells = match cell_diff {
        None => true,
        Some(diff) => {
            println!("batch-vs-scalar: MISMATCH at {label}: {diff}");
            false
        }
    };
    let counters = count_b == count_s;
    if !counters {
        println!(
            "batch-vs-scalar: COUNTER MISMATCH at {label}: batch trunc={} scalar trunc={}",
            count_b.trunc.total(),
            count_s.trunc.total()
        );
    }
    if cells && counters {
        println!(
            "batch-vs-scalar: bit-identical at {label} ({} truncated ops)",
            count_b.trunc.total()
        );
        true
    } else {
        false
    }
}

/// First bitwise difference between two flow grids, if any.
fn grid_diff(a: &Grid, b: &Grid) -> Option<String> {
    for (name, fa, fb) in [("u", &a.u, &b.u), ("v", &a.v, &b.v), ("phi", &a.phi, &b.phi)] {
        for (k, (x, y)) in fa.iter().zip(fb.iter()).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Some(format!("field {name} index {k}: {x:e} vs {y:e}"));
            }
        }
    }
    None
}

fn main() {
    let mut failed = false;
    // e11m12 exercises the monomorphized kernel table; e11m20 fails the
    // double-rounding bound and exercises the per-element fallback tier.
    for (e, m) in [(11u32, 12u32), (11, 20)] {
        let fmt = Format::new(e, m);
        for recon in [ReconKind::Plm, ReconKind::Weno5] {
            let (mesh_b, count_b) = run_sedov(fmt, recon, false);
            let (mesh_s, count_s) = run_sedov(fmt, recon, true);
            let label = format!("sedov-{recon:?} {fmt}").to_lowercase();
            if !report(&label, amr::bitwise_diff(&mesh_b, &mesh_s), count_b, count_s) {
                failed = true;
            }
        }
        let (mesh_b, count_b) = run_sod_hll(fmt, false);
        let (mesh_s, count_s) = run_sod_hll(fmt, true);
        let label = format!("sod-hll {fmt}").to_lowercase();
        if !report(&label, amr::bitwise_diff(&mesh_b, &mesh_s), count_b, count_s) {
            failed = true;
        }
        let (grid_b, count_b) = run_bubble(fmt, false);
        let (grid_s, count_s) = run_bubble(fmt, true);
        let label = format!("bubble {fmt}").to_lowercase();
        if !report(&label, grid_diff(&grid_b, &grid_s), count_b, count_s) {
            failed = true;
        }
        let (grid_b, count_b) = run_bubble_reinit(fmt, false);
        let (grid_s, count_s) = run_bubble_reinit(fmt, true);
        let label = format!("bubble-reinit {fmt}").to_lowercase();
        if !report(&label, grid_diff(&grid_b, &grid_s), count_b, count_s) {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
