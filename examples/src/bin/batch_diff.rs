//! Batch-vs-scalar bit-identity smoke: run a tiny Sedov blast through the
//! instrumented hydro solver twice — once with `raptor_core::batch` slice
//! kernels enabled (the default) and once with [`batch::set_force_scalar`]
//! pinning
//! every consumer to its per-op scalar path — then byte-compare every cell
//! of every variable and the session op counters.
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin batch_diff
//! ```
//!
//! Exits nonzero (and names the first differing cell) on any mismatch.
//! This is the CI gate for the batch tier's core contract: the fast path
//! is an *optimization*, never a semantic change.

use bigfloat::Format;
use hydro::{setup, Problem, ReconKind};
use raptor_core::{batch, Config, Counters, Session, Tracked};

/// One tiny Sedov run (max_level=2, 3 threads, a handful of steps) under
/// an op-mode counting session; returns the final mesh and the counters.
fn run(fmt: Format, force_scalar: bool) -> (amr::Mesh, Counters) {
    batch::set_force_scalar(force_scalar);
    let mut sim = setup(Problem::Sedov, 2, 8, ReconKind::Plm);
    let sess = Session::new(Config::op_files(fmt, ["Hydro"]).with_counting())
        .expect("valid config");
    sim.run::<Tracked>(0.02, 12, 3, &sess);
    batch::set_force_scalar(false);
    (sim.mesh, sess.counters())
}

fn main() {
    let mut failed = false;
    // e11m12 exercises the monomorphized kernel table; e11m20 fails the
    // double-rounding bound and exercises the per-element fallback tier.
    for (e, m) in [(11u32, 12u32), (11, 20)] {
        let fmt = Format::new(e, m);
        let (mesh_b, count_b) = run(fmt, false);
        let (mesh_s, count_s) = run(fmt, true);
        let cells = match amr::bitwise_diff(&mesh_b, &mesh_s) {
            None => true,
            Some(diff) => {
                println!("batch-vs-scalar: MISMATCH at {fmt}: {diff}");
                false
            }
        };
        let counters = count_b == count_s;
        if !counters {
            println!(
                "batch-vs-scalar: COUNTER MISMATCH at {fmt}: batch trunc={} scalar trunc={}",
                count_b.trunc.total(),
                count_s.trunc.total()
            );
        }
        if cells && counters {
            println!(
                "batch-vs-scalar: bit-identical at {fmt} ({} truncated ops)",
                count_b.trunc.total()
            );
        } else {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
