//! Quickstart: profile a numerical kernel at several precisions.
//!
//! ```sh
//! cargo run --release -p raptor-examples --bin quickstart
//! ```
//!
//! Mirrors the paper's basic workflow (§3.2): write the kernel once, pick
//! a target format, run, inspect errors and op counts.

use bigfloat::Format;
use raptor_core::{region, Config, Real, Session, Tracked};

/// A little iterative kernel: Newton's method for the cube root.
fn cbrt_newton<R: Real>(a: R, iters: usize) -> R {
    let _r = region("Demo/cbrt");
    let third = R::from_f64(1.0 / 3.0);
    let mut x = a;
    for _ in 0..iters {
        // x <- (2x + a/x^2) / 3
        x = (R::two() * x + a / (x * x)) * third;
    }
    x
}

fn main() {
    let a = 12.7;
    let exact = a.powf(1.0 / 3.0);
    let reference = cbrt_newton(a, 30);
    println!("RAPTOR quickstart: Newton cube root of {a}");
    println!("  f64 reference:      {reference:.17} (true {exact:.17})");
    println!();
    println!("  {:>13} {:>22} {:>12} {:>10}", "format", "result", "rel err", "trunc ops");
    for (e, m) in [(11u32, 32u32), (11, 16), (8, 23), (5, 10), (11, 6), (5, 2)] {
        let fmt = Format::new(e, m);
        let sess = Session::new(Config::op_functions(fmt, ["Demo/cbrt"]).with_counting())
            .expect("valid config");
        let guard = sess.install();
        let got = cbrt_newton(Tracked::from_f64(a), 30).to_f64();
        drop(guard);
        let c = sess.counters();
        println!(
            "  {:>13} {:>22.17} {:>12.2e} {:>10}",
            format!("{fmt}"),
            got,
            ((got - exact) / exact).abs(),
            c.trunc.total()
        );
    }
    println!();
    println!("Observe: the error tracks 2^-mantissa until the format can no longer");
    println!("represent the iterate at all (fp8 stalls far from the root).");
}
