//! Runnable demos for the RAPTOR reproduction — see `src/bin/`:
//! `quickstart`, `sedov_precision_hunt`, `mem_debug`, `bubble_rising`,
//! `codesign_advisor`.
//!
//! `sedov_precision_hunt` and `codesign_advisor` are thin CLI wrappers
//! over the `raptor-lab` campaign engine. Both share one arg contract,
//! parsed by [`parse_lab_args`]:
//!
//! * an optional registry scenario name (e.g. `eos/cellular`);
//! * `--tiny` — the mini scale for CI smoke runs;
//! * `--ranks N` — shard the campaign across `N` minimpi ranks
//!   (`raptor_lab::run_campaign_distributed`); the merged report is
//!   content-identical to the single-rank sweep;
//! * `--resume <path>` — persist per-candidate outcomes to a cache file
//!   so interrupted or repeated sweeps restart warm (campaign binaries);
//! * `--native` — restrict the lattice to the GPU-native fp32/fp64
//!   hardware path (`raptor_lab::native_candidates`, the §3.6 question).

use raptor_lab::{find, registry, LabParams, Scenario};
use std::path::PathBuf;

/// Parsed arguments of the campaign binaries.
pub struct LabArgs {
    /// The scenario to sweep.
    pub scenario: Box<dyn Scenario>,
    /// Scale knobs (`--tiny` selects the mini scale).
    pub params: LabParams,
    /// minimpi rank count (`--ranks N`, default 1).
    pub ranks: usize,
    /// Outcome-cache path (`--resume <path>`), if resuming.
    pub resume: Option<PathBuf>,
    /// Restrict to the GPU-native lattice (`--native`).
    pub native: bool,
}

/// Parse the campaign binaries' shared CLI:
/// `[scenario-name] [--tiny] [--ranks N] [--resume <path>] [--native]`.
/// Unknown scenario names print the registry and exit with status 2;
/// malformed flag values exit with status 2 as well.
pub fn parse_lab_args(default_scenario: &str) -> LabArgs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let native = args.iter().any(|a| a == "--native");
    let ranks = match flag_value(&args, "--ranks") {
        None => 1,
        Some(v) => v.parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
            eprintln!("--ranks wants a positive integer, got `{v}`");
            std::process::exit(2);
        }),
    };
    let resume = flag_value(&args, "--resume").map(PathBuf::from);
    // The scenario name is the first bare arg that is not a flag value.
    let mut skip_next = false;
    let mut name = default_scenario;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--ranks" || a == "--resume" {
            skip_next = true;
        } else if !a.starts_with("--") {
            name = a;
            break;
        }
    }
    let scenario = find(name).unwrap_or_else(|| {
        eprintln!("unknown scenario `{name}`; registered:");
        for s in registry() {
            eprintln!("  {}", s.name());
        }
        std::process::exit(2);
    });
    let params = if tiny { LabParams::mini() } else { LabParams::demo() };
    LabArgs { scenario, params, ranks, resume, native }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}
