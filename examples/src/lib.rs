//! Runnable demos for the RAPTOR reproduction — see `src/bin/`:
//! `quickstart`, `sedov_precision_hunt`, `mem_debug`, `bubble_rising`,
//! `codesign_advisor`.
//!
//! `sedov_precision_hunt` and `codesign_advisor` are thin CLI wrappers
//! over the `raptor-lab` campaign engine: both accept an optional
//! registry scenario name (e.g. `eos/cellular`) and a `--tiny` flag
//! that drops to the mini scale for CI smoke runs — parsed by
//! [`parse_lab_args`], the one arg contract both binaries share.

use raptor_lab::{find, registry, LabParams, Scenario};

/// Parse the campaign binaries' shared CLI: `[scenario-name] [--tiny]`.
/// Unknown scenario names print the registry and exit with status 2.
pub fn parse_lab_args(default_scenario: &str) -> (Box<dyn Scenario>, LabParams) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let name = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or(default_scenario);
    let scenario = find(name).unwrap_or_else(|| {
        eprintln!("unknown scenario `{name}`; registered:");
        for s in registry() {
            eprintln!("  {}", s.name());
        }
        std::process::exit(2);
    });
    let params = if tiny { LabParams::mini() } else { LabParams::demo() };
    (scenario, params)
}
