//! Runnable demos for the RAPTOR reproduction — see `src/bin/`:
//! `quickstart`, `sedov_precision_hunt`, `mem_debug`, `bubble_rising`,
//! `codesign_advisor`.
//!
//! `sedov_precision_hunt` and `codesign_advisor` are thin CLI wrappers
//! over the `raptor-lab` campaign engine. Both share one arg contract,
//! parsed by [`parse_lab_args`]:
//!
//! * an optional registry scenario name (e.g. `eos/cellular`);
//! * `--tiny` — the mini scale for CI smoke runs;
//! * `--ranks N` — distribute the work across `N` minimpi ranks through
//!   the shared work-stealing `raptor_lab::queue::TaskPool` (campaign
//!   candidates, study pairs, and individual precision-search probes are
//!   all stolen from a rank-0 queue); merged reports are
//!   content-identical to the single-rank run;
//! * `--resume <dir>` — persist per-candidate outcomes (and, for
//!   precision hunts, per-probe results) to a sharded cache directory so
//!   interrupted or repeated runs restart warm; any number of concurrent
//!   processes share one cache (per-shard advisory locks), a legacy
//!   single-file cache migrates in place on first load, and every
//!   resumed run appends its scheduler stats to the
//!   `stats_history.jsonl` inside the cache, rendered by
//!   `codesign_advisor --stats-history <path>`;
//! * `--native` — restrict the lattice to the GPU-native fp32/fp64
//!   hardware path (`raptor_lab::native_candidates`, the §3.6 question);
//! * `--study` — sweep the whole registry into one cross-scenario
//!   codesign table (`codesign_advisor` only; pairs are distributed with
//!   the work-stealing scheduler when `--ranks > 1`);
//! * `--scenarios a,b,c` — restrict a study (or a multi-scenario hunt)
//!   to a comma-separated registry subset, resolved in registry order.

#![forbid(unsafe_code)]

use raptor_lab::{find, registry, LabParams, Scenario};
use std::path::PathBuf;

/// Parsed arguments of the campaign binaries.
pub struct LabArgs {
    /// The scenario to sweep (single-scenario modes).
    pub scenario: Box<dyn Scenario>,
    /// Whether the scenario name was given on the command line (`false`:
    /// `scenario` is the binary's default). Multi-scenario modes use
    /// this to honor — or refuse — an explicit positional name instead
    /// of silently ignoring it.
    pub named: bool,
    /// Scale knobs (`--tiny` selects the mini scale).
    pub params: LabParams,
    /// minimpi rank count (`--ranks N`, default 1).
    pub ranks: usize,
    /// Outcome-cache directory (`--resume <dir>`), if resuming.
    pub resume: Option<PathBuf>,
    /// Restrict to the GPU-native lattice (`--native`).
    pub native: bool,
    /// Full-registry study mode (`--study`).
    pub study: bool,
    /// Scenario subset for studies and multi-scenario hunts
    /// (`--scenarios a,b,c`), resolved via
    /// [`raptor_lab::study_scenarios`]; `None` means the full registry.
    pub scenarios: Option<String>,
}

/// Parse the campaign binaries' shared CLI: `[scenario-name] [--tiny]
/// [--ranks N] [--resume <path>] [--native] [--study]
/// [--scenarios a,b,c]`. Unknown scenario names print the registry and
/// exit with status 2; malformed flag values exit with status 2 as well.
pub fn parse_lab_args(default_scenario: &str) -> LabArgs {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let tiny = args.iter().any(|a| a == "--tiny");
    let native = args.iter().any(|a| a == "--native");
    let study = args.iter().any(|a| a == "--study");
    let ranks = match flag_value(&args, "--ranks") {
        None => 1,
        Some(v) => v.parse::<usize>().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
            eprintln!("--ranks wants a positive integer, got `{v}`");
            std::process::exit(2);
        }),
    };
    let resume = flag_value(&args, "--resume").map(PathBuf::from);
    let scenarios = flag_value(&args, "--scenarios").map(str::to_string);
    // The scenario name is the first bare arg that is not a flag value.
    let mut skip_next = false;
    let mut name = default_scenario;
    let mut named = false;
    for a in &args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a == "--ranks" || a == "--resume" || a == "--scenarios" {
            skip_next = true;
        } else if !a.starts_with("--") {
            name = a;
            named = true;
            break;
        }
    }
    let scenario = find(name).unwrap_or_else(|| {
        eprintln!("unknown scenario `{name}`; registered:");
        for s in registry() {
            eprintln!("  {}", s.name());
        }
        std::process::exit(2);
    });
    let params = if tiny { LabParams::mini() } else { LabParams::demo() };
    LabArgs { scenario, named, params, ranks, resume, native, study, scenarios }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).map(String::as_str)
}
