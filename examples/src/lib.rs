//! Runnable demos for the RAPTOR reproduction — see `src/bin/`:
//! `quickstart`, `sedov_precision_hunt`, `mem_debug`, `bubble_rising`,
//! `codesign_advisor`.
